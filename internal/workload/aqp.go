// Package workload synthesizes the paper's two evaluation workloads: the
// Table I TPC-H AQP workload (30 jobs, Poisson arrivals, light/medium/
// heavy mix, uniform accuracy-threshold and deadline spaces) and the
// Table II survey-based DLT workload (60/20/20 convergence/accuracy/
// runtime criteria over the model zoo's hyperparameter spaces). It also
// seeds historical-job repositories so the estimators have the history
// the paper assumes.
package workload

import (
	"fmt"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/tpch"
)

// Table I parameter spaces.
var (
	// AccuracyThresholds are the Table I accuracy-threshold choices.
	AccuracyThresholds = []float64{0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}
	// DeadlinesByClass are the Table I per-class deadline spaces, seconds.
	DeadlinesByClass = map[tpch.Class][]float64{
		tpch.Light:  {360, 420, 480, 540, 600, 660, 720, 780, 840, 900},
		tpch.Medium: {1080, 1200, 1320, 1440, 1560, 1680, 1800, 1920, 2040, 2160},
		tpch.Heavy:  {1440, 1620, 1800, 1980, 2160, 2340, 2520, 2700, 2880, 3060},
	}
)

// AQPSpec is one synthesized AQP job before binding to a catalog.
type AQPSpec struct {
	ID           string
	Query        string
	Class        tpch.Class
	Tenant       string
	Accuracy     float64
	DeadlineSecs float64
	ArrivalSecs  float64
	BatchRows    int
}

// AQPWorkloadConfig parameterizes Table I generation.
type AQPWorkloadConfig struct {
	// Jobs is the workload size (30 in the paper).
	Jobs int
	// Mix is the light/medium/heavy job proportion (Table I: 40/30/30).
	Mix [3]float64
	// MeanArrivalSecs is the Poisson mean inter-arrival time (160 s).
	MeanArrivalSecs float64
	// BatchRows is the per-step row batch size.
	BatchRows int
	// Seed drives every random choice.
	Seed uint64
}

// DefaultAQPWorkload is the Table I configuration.
func DefaultAQPWorkload(jobs int, seed uint64) AQPWorkloadConfig {
	if jobs <= 0 {
		jobs = 30
	}
	return AQPWorkloadConfig{
		Jobs:            jobs,
		Mix:             [3]float64{0.40, 0.30, 0.30},
		MeanArrivalSecs: 160,
		BatchRows:       2000,
		Seed:            seed,
	}
}

// GenerateAQP samples a Table I workload: query type, accuracy threshold
// and deadline are uniform over their spaces; arrivals follow a Poisson
// process.
func GenerateAQP(cfg AQPWorkloadConfig) []AQPSpec {
	r := sim.NewRand(cfg.Seed ^ 0xa9b)
	if cfg.Jobs <= 0 {
		cfg.Jobs = 30
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 2000
	}
	specs := make([]AQPSpec, 0, cfg.Jobs)
	arrival := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		clsIdx := r.PickWeighted(cfg.Mix[:])
		cls := tpch.Class(clsIdx)
		query := sim.Pick(r, tpch.QueriesOfClass(cls))
		spec := AQPSpec{
			ID:           fmt.Sprintf("aqp-%02d-%s", i, query),
			Query:        query,
			Class:        cls,
			Accuracy:     sim.Pick(r, AccuracyThresholds),
			DeadlineSecs: sim.Pick(r, DeadlinesByClass[cls]),
			ArrivalSecs:  arrival,
			BatchRows:    cfg.BatchRows,
		}
		specs = append(specs, spec)
		if cfg.MeanArrivalSecs > 0 {
			arrival += r.Exp(cfg.MeanArrivalSecs)
		}
	}
	return specs
}

// BuildAQPJob binds a spec to a catalog, producing a runnable arbitrated
// job.
func BuildAQPJob(cat *tpch.Catalog, spec AQPSpec) (*core.AQPJob, error) {
	q, err := cat.NewQuery(spec.Query)
	if err != nil {
		return nil, err
	}
	prof, err := cat.MemoryProfile(spec.Query)
	if err != nil {
		return nil, err
	}
	crit, err := criteria.NewAccuracy("ACC", spec.Accuracy,
		criteria.Deadline{Value: spec.DeadlineSecs, Unit: criteria.Seconds})
	if err != nil {
		return nil, err
	}
	return core.NewAQPJob(core.AQPJobConfig{
		ID:        spec.ID,
		Query:     q,
		Criteria:  crit,
		Class:     spec.Class.String(),
		Tenant:    spec.Tenant,
		EstMemMB:  prof.EstimateMB(),
		BatchRows: spec.BatchRows,
	})
}

// RecommendedBatchRows returns a per-step batch size giving roughly 256
// batches per full pass over the lineitem stream, so that arbitration
// granularity (epochs per job) is scale-factor-invariant — at SF=1 this
// lands near the paper's batch sizing, and at test scale factors it keeps
// the estimators supplied with enough per-epoch observations.
func RecommendedBatchRows(cat *tpch.Catalog) int {
	rows, err := cat.FactRows("q1")
	if err != nil || rows <= 0 {
		return 2000
	}
	b := rows / 256
	if b < 50 {
		b = 50
	}
	return b
}

// DefaultAQPMemoryMB sizes the pool memory so a Table I mix contends: a
// bit over half the summed estimates of one job per query, which admits
// many light jobs but only a few heavy ones at a time (the regime the
// paper's 192 GB / SF=1 setup produces with 30 concurrent jobs).
func DefaultAQPMemoryMB(cat *tpch.Catalog) float64 {
	var total float64
	for _, q := range tpch.AllQueries {
		if prof, err := cat.MemoryProfile(q); err == nil {
			total += prof.EstimateMB()
		}
	}
	return total * 0.55
}

// SeedAQPHistory runs every TPC-H query once, standalone on a single
// thread, and stores its (runtime, estimated-accuracy) progress curve in
// the repository — the historical data Rotary-AQP's progress estimator
// fits against ("the historical data are from the selected historical
// jobs that are similar to job j", §IV-A).
func SeedAQPHistory(repo *estimate.Repository, cat *tpch.Catalog, batchRows int) error {
	if batchRows <= 0 {
		batchRows = 2000
	}
	for _, name := range tpch.AllQueries {
		q, err := cat.NewQuery(name)
		if err != nil {
			return err
		}
		cls, err := tpch.ClassOf(name)
		if err != nil {
			return err
		}
		// Size batches against the query's own fact stream so every
		// historical curve has enough points to fit, even for queries
		// whose fact table is small (customers, partsupp).
		qBatch := batchRows
		if factRows, ferr := cat.FactRows(name); ferr == nil {
			if cap := factRows / 64; cap < qBatch {
				qBatch = cap
			}
		}
		if qBatch < 10 {
			qBatch = 10
		}
		var secs float64
		var curve []estimate.Point
		for !q.Exhausted() {
			var epochCost float64
			for b := 0; b < 4; b++ {
				rows, cost := q.ProcessBatch(qBatch, 1)
				epochCost += cost
				if rows == 0 {
					break
				}
			}
			secs += epochCost
			// Historical curves store the retrospective true accuracy:
			// once a job has run to completion its final answer is known,
			// so its whole αc/αf trajectory is reconstructible.
			curve = append(curve, estimate.Point{X: secs, Y: q.Accuracy()})
		}
		repo.AddAQP(estimate.AQPRecord{
			ID:        "hist-" + name,
			Query:     name,
			Class:     cls.String(),
			BatchRows: batchRows,
			Curve:     curve,
		})
	}
	return nil
}
