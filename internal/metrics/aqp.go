// Package metrics computes the paper's evaluation measures — attainment
// (Fig. 6, 8, 9), false attainment and waiting time (Fig. 7), the §V-B
// attainment-progress distributions behind the Fig. 10 violin plots, and
// the Fig. 11 placement Gantt — plus plain-text renderers for all of
// them.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rotary/internal/core"
)

// AQPJobOutcome is one job's measured result.
type AQPJobOutcome struct {
	ID    string
	Query string
	Class string
	// Attained: the job's ground-truth accuracy met its threshold before
	// its deadline — the Fig. 6 measure.
	Attained bool
	// FalseAttained: the system stopped the job as attained (or
	// converged) but the ground-truth accuracy was below the threshold —
	// the Fig. 7a measure.
	FalseAttained bool
	// WaitSecs is runtime-under-policy minus isolated runtime (Fig. 7b).
	WaitSecs float64
	// RuntimeSecs is terminal time minus arrival.
	RuntimeSecs float64
	StopAcc     float64
	Status      core.JobStatus
}

// AQPReport aggregates a policy's run over one workload.
type AQPReport struct {
	Policy   string
	Outcomes []AQPJobOutcome
}

// AnalyzeAQP derives the report from terminal jobs. isolatedSecs maps job
// ID to its isolated runtime (may be nil, zeroing the waiting-time
// column).
func AnalyzeAQP(policy string, jobs []*core.AQPJob, isolatedSecs map[string]float64) AQPReport {
	rep := AQPReport{Policy: policy}
	for _, j := range jobs {
		out := AQPJobOutcome{
			ID:      j.ID(),
			Query:   j.Query().Name(),
			Class:   j.Class(),
			StopAcc: j.StopAccuracy(),
			Status:  j.Status(),
		}
		threshold := j.Criteria().Threshold
		runtime := (j.EndTime() - j.Arrival()).Seconds()
		out.RuntimeSecs = runtime
		metThreshold := j.StopAccuracy() >= threshold
		beforeDeadline := runtime <= j.DeadlineSecs()+1e-9
		out.Attained = metThreshold && beforeDeadline && j.Status() != core.StatusExpired
		// False attainment is the envelope function's mistake (§V-A3):
		// the job was stopped as converged although its ground-truth
		// accuracy had not met the threshold.
		out.FalseAttained = j.Status() == core.StatusConvergedStop && !metThreshold
		if isolatedSecs != nil {
			if iso, ok := isolatedSecs[j.ID()]; ok {
				w := runtime - iso
				if w < 0 {
					w = 0
				}
				out.WaitSecs = w
			}
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep
}

// AttainedByClass counts attained jobs per class ("light", "medium",
// "heavy") plus "total".
func (r AQPReport) AttainedByClass() map[string]int {
	counts := map[string]int{}
	for _, o := range r.Outcomes {
		if o.Attained {
			counts[o.Class]++
			counts["total"]++
		}
	}
	return counts
}

// TotalByClass counts all jobs per class plus "total".
func (r AQPReport) TotalByClass() map[string]int {
	counts := map[string]int{}
	for _, o := range r.Outcomes {
		counts[o.Class]++
		counts["total"]++
	}
	return counts
}

// FalseAttained counts Fig. 7a's false attainments.
func (r AQPReport) FalseAttained() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.FalseAttained {
			n++
		}
	}
	return n
}

// AvgWaitSecs is Fig. 7b's average waiting time: runtime under the policy
// minus isolated runtime, averaged over the jobs that attained their
// criteria (unattained jobs hold resources until expiry by definition and
// would swamp the comparison).
func (r AQPReport) AvgWaitSecs() float64 {
	var sum float64
	n := 0
	for _, o := range r.Outcomes {
		if !o.Attained {
			continue
		}
		sum += o.WaitSecs
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderAQPComparison renders a Fig. 6-style table: attained jobs per
// class for each policy.
func RenderAQPComparison(reports []AQPReport) string {
	var b strings.Builder
	classes := []string{"light", "medium", "heavy", "total"}
	fmt.Fprintf(&b, "%-14s", "policy")
	for _, c := range classes {
		fmt.Fprintf(&b, "%10s", c)
	}
	b.WriteByte('\n')
	for _, r := range reports {
		att := r.AttainedByClass()
		tot := r.TotalByClass()
		fmt.Fprintf(&b, "%-14s", r.Policy)
		for _, c := range classes {
			fmt.Fprintf(&b, "%7d/%-2d", att[c], tot[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderAQPOverheads renders a Fig. 7-style table: false attainment and
// average waiting time per policy.
func RenderAQPOverheads(reports []AQPReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %16s %18s\n", "policy", "false-attainment", "avg-wait-seconds")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-14s %16d %18.1f\n", r.Policy, r.FalseAttained(), r.AvgWaitSecs())
	}
	return b.String()
}

// Bar renders a crude horizontal bar for terminal output. Non-finite
// inputs render empty: NaN slips past ordered comparisons and int(NaN)
// is implementation-defined, so it must be refused before the division —
// a NaN ratio would otherwise feed strings.Repeat a garbage count.
func Bar(value, max float64, width int) string {
	if math.IsNaN(max) || math.IsInf(max, 0) || max <= 0 ||
		math.IsNaN(value) || math.IsInf(value, 0) || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("█", n)
}

// SortOutcomesByID orders a report deterministically for golden output.
func (r *AQPReport) SortOutcomesByID() {
	sort.Slice(r.Outcomes, func(i, j int) bool { return r.Outcomes[i].ID < r.Outcomes[j].ID })
}
