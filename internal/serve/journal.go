// Arbiter write-ahead journal: the durability layer that turns the
// serving daemon from a process-scoped prototype into a crash-recoverable
// arbiter. Every serve-state transition — submit, admission verdict,
// grant, epoch completion, terminal status — is appended as one
// CRC-framed JSON line and fsynced before the client sees the reply, so a
// SIGKILL at any instant loses at most the transition in flight. On
// restart the journal replays to the last durable state: the registry of
// jobs, each job's latest status, the admission queue's arrival order,
// and the virtual-clock position. Size-triggered compaction folds the log
// into a single snapshot record published through the checkpoint store's
// atomic-write machinery, so the journal stays bounded however long the
// daemon lives.
//
// Corruption tolerance: a torn append (power cut mid-line) or a
// bit-flipped tail is detected by the per-line CRC32 and the journal
// degrades to its longest valid prefix — the damaged suffix is truncated
// away and recovery proceeds from what was provably durable, instead of
// refusing to start.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"rotary/internal/core"
)

// Journal record kinds, one per arbiter state transition.
const (
	// recServerEpoch marks a daemon boot: the server-epoch counter
	// increments once per OpenJournal, and clients detect restarts by
	// comparing it in the resume handshake.
	recServerEpoch = "server-epoch"
	// recSubmit logs an accepted submission before it reaches the
	// executor (WAL ordering: log first, apply second).
	recSubmit = "submit"
	// recVerdict logs the admission decision: admitted, rejected, or
	// degraded (admitted best-effort).
	recVerdict = "verdict"
	// recGrant logs a pending → running transition.
	recGrant = "grant"
	// recEpoch logs a completed running epoch (cumulative count).
	recEpoch = "epoch"
	// recTerminal logs a terminal status: attained, converged, expired,
	// rejected, or shed.
	recTerminal = "terminal"
	// recClock periodically persists the virtual-clock position so a
	// restart of an idle paced server does not rewind time to the last
	// job transition.
	recClock = "clock"
	// recSnapshot is the compaction record: the full replayed state,
	// folded into one line at the head of a fresh journal file.
	recSnapshot = "snapshot"
)

// Record is one journal entry. At is the virtual time of the transition;
// recovery resumes the clock at the maximum At seen in the valid prefix.
type Record struct {
	Kind        string      `json:"kind"`
	ID          string      `json:"id,omitempty"`
	ReqID       string      `json:"req_id,omitempty"`
	Statement   string      `json:"stmt,omitempty"`
	Tenant      string      `json:"tenant,omitempty"`
	BatchRows   int         `json:"batch,omitempty"`
	Status      string      `json:"status,omitempty"`
	BestEffort  bool        `json:"best_effort,omitempty"`
	Epochs      int         `json:"epochs,omitempty"`
	At          float64     `json:"at"`
	ServerEpoch int         `json:"server_epoch,omitempty"`
	Jobs        []JobRecord `json:"jobs,omitempty"` // snapshot only
}

// JobRecord is one job's journaled lifecycle state: everything recovery
// needs to rebuild the job and its queue position after a restart.
type JobRecord struct {
	ID         string  `json:"id"`
	ReqID      string  `json:"req_id,omitempty"`
	Statement  string  `json:"stmt"`
	Tenant     string  `json:"tenant,omitempty"`
	BatchRows  int     `json:"batch,omitempty"`
	ArrivalAt  float64 `json:"arrival_at"`
	Status     string  `json:"status"`
	BestEffort bool    `json:"best_effort,omitempty"`
	Epochs     int     `json:"epochs,omitempty"`
}

// terminalStatus reports whether a journaled status string is final.
// "submitted" (logged, not yet admitted) and "pending"/"running" are
// live; everything else recovery must not re-register.
func terminalStatus(status string) bool {
	switch status {
	case "submitted", "pending", "running":
		return false
	default:
		return true
	}
}

// Recovered is the durable state replayed from the journal's valid
// prefix at open time: what the previous daemon incarnation provably
// committed.
type Recovered struct {
	// ServerEpoch is the new incarnation's epoch (previous epoch + 1).
	ServerEpoch int
	// VirtualNow is the virtual-clock position to resume from: the
	// maximum transition time in the valid prefix.
	VirtualNow float64
	// Jobs lists every journaled job in original arrival order, each at
	// its latest journaled status.
	Jobs []JobRecord
	// DroppedBytes counts corrupt or truncated tail bytes discarded at
	// open (0 for a clean journal).
	DroppedBytes int64
}

// NonTerminal returns the journaled jobs recovery must re-register, in
// arrival order.
func (r Recovered) NonTerminal() []JobRecord {
	out := make([]JobRecord, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if !terminalStatus(j.Status) {
			out = append(out, j)
		}
	}
	return out
}

// Journal line format:
//
//	RJNL1 <crc32-hex8> <json-record>\n
//
// The CRC32 (IEEE) covers exactly the JSON payload bytes, reusing the
// checkpoint frame's checksum discipline in a line-oriented shape: a
// record whose prefix, checksum, or JSON fails to parse marks the end of
// the journal's valid prefix.
const journalMagic = "RJNL1"

// journalFile is the journal's file name inside its directory.
const journalFile = "serve.journal"

// DefaultCompactBytes is the journal size that triggers compaction to a
// snapshot record.
const DefaultCompactBytes = 1 << 20

// Journal is the arbiter's write-ahead log. Append is safe for
// concurrent use, though the serving mode only writes from its single
// driver goroutine.
type Journal struct {
	mu           sync.Mutex
	dir          string
	path         string
	f            *os.File
	size         int64
	compactBytes int64

	// Live replay state, mirrored on every append so compaction can fold
	// the log into a snapshot without re-reading it.
	jobs        map[string]*JobRecord
	order       []string
	serverEpoch int
	virtualNow  float64

	recovered   Recovered
	appends     int64
	syncs       int64
	groups      int64
	compactions int64
	closed      bool

	// degraded latches the journal after a failed write or sync. A torn
	// frame ends the longest valid prefix forever: any record written past
	// it would be unreadable on replay, so instead of silently losing
	// post-tear appends the journal refuses them with ErrJournalDegraded.
	degraded error

	// Fault-injection hooks for tests; nil in production.
	frameHook func(Record) ([]byte, error)
	writeHook func([]byte) (int, error)
}

// OpenJournal opens (creating if absent) the write-ahead journal under
// dir, replays its valid prefix, truncates any corrupt tail, and stamps
// the new daemon incarnation with an incremented server-epoch record.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal dir: %w", err)
	}
	jl := &Journal{
		dir:          dir,
		path:         filepath.Join(dir, journalFile),
		compactBytes: DefaultCompactBytes,
		jobs:         make(map[string]*JobRecord),
	}
	dropped, err := jl.replayFile()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: open journal: %w", err)
	}
	jl.f = f
	if st, err := f.Stat(); err == nil {
		jl.size = st.Size()
	}
	jl.serverEpoch++
	jl.recovered = Recovered{
		ServerEpoch:  jl.serverEpoch,
		VirtualNow:   jl.virtualNow,
		Jobs:         jl.snapshotJobs(),
		DroppedBytes: dropped,
	}
	if err := jl.Append(Record{Kind: recServerEpoch, ServerEpoch: jl.serverEpoch, At: jl.virtualNow}); err != nil {
		f.Close()
		return nil, err
	}
	return jl, nil
}

// replayFile reads the journal, applies every valid record, and truncates
// the file to the longest valid prefix, reporting how many tail bytes
// were dropped. A missing file is an empty journal.
func (jl *Journal) replayFile() (dropped int64, err error) {
	data, err := os.ReadFile(jl.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("serve: read journal: %w", err)
	}
	valid := int64(0)
	r := bufio.NewReader(bytes.NewReader(data))
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == io.EOF && len(line) == 0 {
			break
		}
		// A line without its trailing newline is a torn append.
		if rerr != nil {
			break
		}
		rec, perr := parseJournalLine(line[:len(line)-1])
		if perr != nil {
			break
		}
		jl.apply(rec)
		valid += int64(len(line))
	}
	dropped = int64(len(data)) - valid
	if dropped > 0 {
		if terr := os.Truncate(jl.path, valid); terr != nil {
			return dropped, fmt.Errorf("serve: truncate corrupt journal tail: %w", terr)
		}
	}
	return dropped, nil
}

// frameJournalLine renders one record as a CRC-framed line (including the
// trailing newline).
func frameJournalLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal journal record: %w", err)
	}
	line := make([]byte, 0, len(journalMagic)+10+len(payload)+1)
	line = append(line, journalMagic...)
	line = append(line, ' ')
	line = append(line, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))...)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseJournalLine validates one framed line (without its newline) and
// returns its record. Any deviation — bad magic, short line, checksum
// mismatch, malformed JSON — is corruption.
func parseJournalLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < len(journalMagic)+10 {
		return rec, fmt.Errorf("serve: journal line too short (%d bytes)", len(line))
	}
	if string(line[:len(journalMagic)]) != journalMagic || line[len(journalMagic)] != ' ' {
		return rec, fmt.Errorf("serve: bad journal magic %q", line[:len(journalMagic)])
	}
	crcHex := string(line[len(journalMagic)+1 : len(journalMagic)+9])
	if line[len(journalMagic)+9] != ' ' {
		return rec, fmt.Errorf("serve: malformed journal frame")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return rec, fmt.Errorf("serve: bad journal checksum field: %w", err)
	}
	payload := line[len(journalMagic)+10:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return rec, fmt.Errorf("serve: journal CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("serve: journal record: %w", err)
	}
	return rec, nil
}

// apply folds one record into the live replay state. Shared by the open
// replay and Append, so the in-memory mirror always equals what a fresh
// replay of the file would produce.
func (jl *Journal) apply(rec Record) {
	if rec.At > jl.virtualNow {
		jl.virtualNow = rec.At
	}
	switch rec.Kind {
	case recServerEpoch:
		if rec.ServerEpoch > jl.serverEpoch {
			jl.serverEpoch = rec.ServerEpoch
		}
	case recSnapshot:
		jl.jobs = make(map[string]*JobRecord, len(rec.Jobs))
		jl.order = jl.order[:0]
		for i := range rec.Jobs {
			j := rec.Jobs[i]
			jl.jobs[j.ID] = &j
			jl.order = append(jl.order, j.ID)
		}
		if rec.ServerEpoch > jl.serverEpoch {
			jl.serverEpoch = rec.ServerEpoch
		}
	case recSubmit:
		if _, ok := jl.jobs[rec.ID]; !ok {
			jl.jobs[rec.ID] = &JobRecord{
				ID:        rec.ID,
				ReqID:     rec.ReqID,
				Statement: rec.Statement,
				Tenant:    rec.Tenant,
				BatchRows: rec.BatchRows,
				ArrivalAt: rec.At,
				Status:    "submitted",
			}
			jl.order = append(jl.order, rec.ID)
		}
	case recVerdict:
		if j, ok := jl.jobs[rec.ID]; ok {
			switch rec.Status {
			case "admitted":
				j.Status = "pending"
			case "degraded":
				j.Status = "pending"
				j.BestEffort = true
			default: // rejected
				j.Status = rec.Status
			}
		}
	case recGrant:
		if j, ok := jl.jobs[rec.ID]; ok && !terminalStatus(j.Status) {
			j.Status = "running"
		}
	case recEpoch:
		if j, ok := jl.jobs[rec.ID]; ok {
			if rec.Epochs > j.Epochs {
				j.Epochs = rec.Epochs
			}
			if !terminalStatus(j.Status) {
				j.Status = "pending"
			}
		}
	case recTerminal:
		if j, ok := jl.jobs[rec.ID]; ok {
			j.Status = rec.Status
			if rec.Epochs > j.Epochs {
				j.Epochs = rec.Epochs
			}
		}
	}
}

// snapshotJobs copies the live job state in arrival order.
func (jl *Journal) snapshotJobs() []JobRecord {
	out := make([]JobRecord, 0, len(jl.order))
	for _, id := range jl.order {
		out = append(out, *jl.jobs[id])
	}
	return out
}

// Recovered returns the state replayed at open: the previous
// incarnation's durable registry, queue order, and clock.
func (jl *Journal) Recovered() Recovered {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.recovered
}

// ServerEpoch returns this incarnation's epoch.
func (jl *Journal) ServerEpoch() int {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.serverEpoch
}

// Job returns the journaled record for one id — the status op's
// fallback for jobs that went terminal before a restart and were
// therefore never re-registered with the executor.
func (jl *Journal) Job(id string) (JobRecord, bool) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	j, ok := jl.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return *j, true
}

// NonTerminalIDs returns the set of job ids the journal still references
// as live — the checkpoint store's retention set across a restart.
func (jl *Journal) NonTerminalIDs() map[string]bool {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	live := make(map[string]bool)
	for id, j := range jl.jobs {
		if !terminalStatus(j.Status) {
			live[id] = true
		}
	}
	return live
}

// Stats reports journal activity: records appended and compactions run
// by this incarnation, and the current file size.
func (jl *Journal) Stats() (appends, compactions, sizeBytes int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.appends, jl.compactions, jl.size
}

// SyncStats reports fsync amortization: how many f.Sync calls covered how
// many records, and how many of those syncs covered a multi-record group.
// records/syncs is the group-commit factor the ingress batching buys.
func (jl *Journal) SyncStats() (syncs, records, groups int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.syncs, jl.appends, jl.groups
}

// ErrJournalDegraded marks a journal latched read-only after a failed
// write or sync left (or may have left) a torn frame at the tail.
var ErrJournalDegraded = fmt.Errorf("serve: journal degraded")

// Degraded returns the latched write/sync failure, or nil while the
// journal is healthy.
func (jl *Journal) Degraded() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.degraded
}

// Append durably logs the records as one group: the whole batch is framed
// first, written and fsynced once, and only then folded into the live
// replay state. The ordering matters twice over: a frame error mid-batch
// must leave memory and disk untouched (not memory ahead of disk), and a
// failed write or sync must not fold records the file provably may lack.
// After a write/sync failure the journal latches degraded — the tail may
// hold a torn frame that ends the longest valid prefix, so further
// appends would be unrecoverable on replay and are refused instead.
// When the file outgrows the compaction threshold it is folded into a
// snapshot published with the checkpoint store's atomic-write machinery.
func (jl *Journal) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return fmt.Errorf("serve: journal closed")
	}
	if jl.degraded != nil {
		return fmt.Errorf("%w: %v", ErrJournalDegraded, jl.degraded)
	}
	frame := frameJournalLine
	if jl.frameHook != nil {
		frame = jl.frameHook
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := frame(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
	}
	write := jl.f.Write
	if jl.writeHook != nil {
		write = jl.writeHook
	}
	n, err := write(buf.Bytes())
	jl.size += int64(n)
	if err != nil {
		jl.degraded = fmt.Errorf("append: %w", err)
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := jl.f.Sync(); err != nil {
		jl.degraded = fmt.Errorf("sync: %w", err)
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	for _, rec := range recs {
		jl.apply(rec)
	}
	jl.appends += int64(len(recs))
	jl.syncs++
	if len(recs) > 1 {
		jl.groups++
	}
	if jl.size > jl.compactBytes {
		return jl.compactLocked()
	}
	return nil
}

// SetCompactBytes overrides the size threshold that triggers compaction
// (non-positive restores the default).
func (jl *Journal) SetCompactBytes(n int64) {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if n <= 0 {
		n = DefaultCompactBytes
	}
	jl.compactBytes = n
}

// compactLocked folds the journal into one snapshot record and
// atomically replaces the file with it. A crash during compaction leaves
// either the old journal or the new snapshot — both replay to the same
// state.
func (jl *Journal) compactLocked() error {
	snap := Record{
		Kind:        recSnapshot,
		ServerEpoch: jl.serverEpoch,
		At:          jl.virtualNow,
		Jobs:        jl.snapshotJobs(),
	}
	line, err := frameJournalLine(snap)
	if err != nil {
		return err
	}
	if err := core.AtomicWriteFile(jl.path, line); err != nil {
		return fmt.Errorf("serve: journal compaction: %w", err)
	}
	if err := jl.f.Close(); err != nil {
		return fmt.Errorf("serve: journal compaction: %w", err)
	}
	f, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal compaction reopen: %w", err)
	}
	jl.f = f
	jl.size = int64(len(line))
	jl.compactions++
	return nil
}

// Close closes the journal file. Records already appended stay durable;
// Close adds nothing (a crash and a clean shutdown leave the same
// on-disk state, which is the point).
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return nil
	}
	jl.closed = true
	return jl.f.Close()
}
