package estimate

import (
	"sync"
	"time"
)

// TME is the training memory estimator of §IV-B: it predicts a DLT job's
// peak GPU memory so the job "can be launched on a target GPU with
// sufficient memory". It retrieves the historical jobs on the same
// dataset, weights them by the model-size similarity
// 1 − |x−y|/max(x,y) (more similar ⇒ higher weight, the inverse of TEE's
// equal-share scheme), fits a batch-size → memory line by weighted linear
// regression, and pads the estimate by an offset to minimize OOM risk.
type TME struct {
	repo *Repository
	topK int
	// PadFraction and PadMB define the OOM-avoidance padding.
	PadFraction float64
	PadMB       float64

	mu       sync.Mutex
	overhead time.Duration
	calls    int
}

// NewTME returns an estimator over the repository with the paper-style
// padding defaults.
func NewTME(repo *Repository, topK int) *TME {
	if topK < 1 {
		topK = 3
	}
	return &TME{repo: repo, topK: topK, PadFraction: 0.10, PadMB: 256}
}

// EstimateMB predicts the padded peak memory of a job with the given
// model size training on dataset at batchSize. The second result reports
// whether any same-dataset history existed; without history the caller
// must fall back to a conservative default.
func (t *TME) EstimateMB(dataset string, paramsM float64, batchSize int) (float64, bool) {
	start := time.Now()
	defer func() {
		t.mu.Lock()
		t.overhead += time.Since(start)
		t.calls++
		t.mu.Unlock()
	}()

	recs, ws := t.repo.TopKSimilarBySize(dataset, paramsM, t.topK)
	if len(recs) == 0 {
		return 0, false
	}
	points := make([]Point, len(recs))
	for i, rec := range recs {
		points[i] = Point{X: float64(rec.BatchSize), Y: rec.PeakMemMB}
	}
	if countFinite(points) == 0 {
		// Corrupt history (NaN peak memory) would otherwise fit the zero
		// line and report padding-only as a confident estimate.
		return 0, false
	}
	line := FitWLS(points, ws)
	est := line.At(float64(batchSize))
	// A degenerate fit (all history non-finite, or a non-finite batch
	// size) must report unknown so the caller takes its documented
	// conservative-default fallback rather than reserving NaN megabytes.
	if !finite(est) {
		return 0, false
	}
	if est < 0 {
		est = 0
	}
	return est*(1+t.PadFraction) + t.PadMB, true
}

// Overhead reports the cumulative real wall-clock time spent estimating.
func (t *TME) Overhead() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overhead
}

// Calls reports how many estimates were made.
func (t *TME) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}
