package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"
)

// binFrame wraps a payload in the binary codec's length prefix.
func binFrame(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// runConnLoop serves one scripted byte stream through the real
// connection loop and returns every reply frame the server wrote. The
// watchdog converts a wedged loop — the failure mode the codec must
// never have, no matter the input — into a test failure instead of a
// hang.
func runConnLoop(t *testing.T, stream []byte) []byte {
	t.Helper()
	srv, cli := net.Pipe()
	defer cli.Close()

	done := make(chan struct{})
	go func() {
		defer srv.Close()
		connLoop(srv, func(m Message) Response {
			return Response{OK: true, ID: m.ID}
		}, nil, nil)
		close(done)
	}()

	var replies bytes.Buffer
	drained := make(chan struct{})
	go func() {
		io.Copy(&replies, cli)
		close(drained)
	}()
	cli.Write(stream)
	// Half-close is not a pipe concept: closing cli ends both directions,
	// so give in-flight replies a moment before cutting the stream.
	time.Sleep(10 * time.Millisecond)
	cli.Close()

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("connLoop wedged: did not return within 5s of the peer closing")
	}
	<-drained
	return replies.Bytes()
}

// TestBinaryCodecMidFrameDropClosesCleanly: a peer that commits to a
// frame with a length header and then drops mid-payload must produce a
// clean connection close — no reply, no panic, no stuck goroutine.
func TestBinaryCodecMidFrameDropClosesCleanly(t *testing.T) {
	payload := encodeMessage(Message{Op: "health"})
	stream := append(append([]byte{}, binCodecMagic[:]...), binFrame(payload)[:4+len(payload)/2]...)
	if replies := runConnLoop(t, stream); len(replies) != 0 {
		t.Fatalf("dropped mid-frame but got %d reply bytes", len(replies))
	}
}

// TestBinaryCodecStalledPeerTimesOut: a peer that sends a frame header
// and then stalls without closing must hit the mid-frame deadline — the
// read fails with a timeout instead of pinning the server goroutine
// forever.
func TestBinaryCodecStalledPeerTimesOut(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	cc := &binServerCodec{
		r:     bufio.NewReader(srv),
		w:     bufio.NewWriter(srv),
		conn:  srv,
		stall: 50 * time.Millisecond,
	}

	payload := encodeMessage(Message{Op: "health"})
	go cli.Write(binFrame(payload)[:4+1]) // header plus one byte, then silence

	errc := make(chan error, 1)
	go func() {
		_, err := cc.ReadMessage()
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("stalled mid-frame read succeeded")
		}
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("stalled peer produced %v, want deadline error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("mid-frame stall not bounded: ReadMessage still blocked after 5s")
	}
}

// TestBinaryCodecDeadlineClearsAfterFrame: the stall bound applies to
// payload completion only. A healthy frame followed by an idle gap
// longer than the stall, then another frame, must both be served — the
// deadline must not leak into the between-frames wait.
func TestBinaryCodecDeadlineClearsAfterFrame(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	cc := &binServerCodec{
		r:     bufio.NewReader(srv),
		w:     bufio.NewWriter(srv),
		conn:  srv,
		stall: 50 * time.Millisecond,
	}

	go func() {
		cli.Write(binFrame(encodeMessage(Message{Op: "health", ID: "first"})))
		time.Sleep(150 * time.Millisecond) // idle longer than the stall bound
		cli.Write(binFrame(encodeMessage(Message{Op: "health", ID: "second"})))
	}()

	for _, want := range []string{"first", "second"} {
		m, err := cc.ReadMessage()
		if err != nil {
			t.Fatalf("frame %q: %v", want, err)
		}
		if m.ID != want {
			t.Fatalf("read frame %q, want %q", m.ID, want)
		}
	}
}

// FuzzBinaryFrame: arbitrary bytes after the binary preamble — valid
// frames, truncated headers, torn payloads, hostile lengths, garbage
// tags — must never panic or wedge the connection loop: every input
// ends in some number of well-formed reply frames and a clean close.
// Decoded messages additionally round-trip: re-encoding and re-decoding
// what decodeMessage accepted reproduces the same message.
func FuzzBinaryFrame(f *testing.F) {
	valid := encodeMessage(Message{Op: "submit", ID: "q1", ReqID: "r1", Statement: "q5 ACC MIN 80% WITHIN 900 SECONDS"})
	f.Add(binFrame(valid))                          // one healthy frame
	f.Add(binFrame(valid)[:2])                      // truncated header
	f.Add(binFrame(valid)[:4+len(valid)/2])         // torn payload
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})           // hostile length: 4 GiB claim
	f.Add(binFrame([]byte{0xEE}))                   // unknown tag
	f.Add(binFrame([]byte{mtOp, 0x85}))             // truncated uvarint length
	f.Add(binFrame(nil))                            // empty frame
	f.Add(append(binFrame(valid), binFrame(valid)...)) // two frames back to back
	corrupt := binFrame(valid)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt) // bit flip mid-frame

	f.Fuzz(func(t *testing.T, stream []byte) {
		replies := runConnLoop(t, append(binCodecMagic[:], stream...))

		// Every reply the server wrote must itself be a parseable frame
		// stream: whole frames that decode, with nothing left over.
		r := bufio.NewReader(bytes.NewReader(replies))
		for {
			payload, err := readFrame(r)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("server wrote a malformed reply frame: %v", err)
			}
			if _, err := decodeResponse(payload); err != nil {
				t.Fatalf("server reply payload does not decode: %v", err)
			}
		}

		// Round-trip property on the request side: anything decodeMessage
		// accepts must encode back to an equivalent message.
		fr := bufio.NewReader(bytes.NewReader(stream))
		for {
			payload, err := readFrame(fr)
			if err != nil {
				break
			}
			m, err := decodeMessage(payload)
			if err != nil {
				continue
			}
			again, err := decodeMessage(encodeMessage(m))
			if err != nil {
				t.Fatalf("re-encoded message does not decode: %v", err)
			}
			if !reflect.DeepEqual(m, again) {
				t.Fatalf("message round-trip diverged:\n got %+v\nwant %+v", again, m)
			}
		}
	})
}
