package dlt

import (
	"sync"
	"time"
)

// TTR is the training-time recorder of §IV-B: "a side component … to
// record the training time of a single step or an epoch" per job and
// device. Because DLT steps are stable (same architecture, same batch
// size), recording a single steady-state step time per (job, device) pair
// suffices to predict the whole training runtime; the very first step is
// always discarded because of the CUDA warm-up issue.
//
// TTR instruments itself with real wall-clock accounting so the Table III
// overhead experiment can report the recorder's true cost.
type TTR struct {
	mu       sync.Mutex
	stepSecs map[ttrKey]float64
	records  int
	overhead time.Duration
}

type ttrKey struct {
	jobID  string
	device int
}

// NewTTR returns an empty recorder.
func NewTTR() *TTR {
	return &TTR{stepSecs: make(map[ttrKey]float64)}
}

// RecordEpoch folds one observed epoch into the recorder. steps is the
// number of optimization steps the epoch ran; firstEpoch marks the first
// epoch after a (re)placement, whose first step carries the CUDA warm-up
// and is discarded before computing the per-step time.
func (t *TTR) RecordEpoch(jobID string, device int, epochSecs float64, steps int, firstEpoch bool) {
	start := time.Now()
	defer func() {
		t.mu.Lock()
		t.overhead += time.Since(start)
		t.mu.Unlock()
	}()
	if steps <= 0 {
		return
	}
	if firstEpoch {
		epochSecs -= WarmupSeconds
		steps--
		if steps <= 0 || epochSecs <= 0 {
			return
		}
	}
	t.mu.Lock()
	t.stepSecs[ttrKey{jobID, device}] = epochSecs / float64(steps)
	t.records++
	t.mu.Unlock()
}

// StepSeconds reports the recorded steady-state step time of jobID on
// device, falling back to any device's record for the job, and reports
// whether a record was found.
func (t *TTR) StepSeconds(jobID string, device int) (float64, bool) {
	start := time.Now()
	t.mu.Lock()
	defer func() {
		t.overhead += time.Since(start)
		t.mu.Unlock()
	}()
	if s, ok := t.stepSecs[ttrKey{jobID, device}]; ok {
		return s, true
	}
	for k, s := range t.stepSecs {
		if k.jobID == jobID {
			return s, true
		}
	}
	return 0, false
}

// EpochSeconds predicts the wall time of one epoch of jobID on device
// given its step count, and reports whether a recording existed.
func (t *TTR) EpochSeconds(jobID string, device int, steps int) (float64, bool) {
	s, ok := t.StepSeconds(jobID, device)
	if !ok {
		return 0, false
	}
	return s * float64(steps), true
}

// Records reports how many epoch recordings have been folded in.
func (t *TTR) Records() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.records
}

// Overhead reports the cumulative real wall-clock time spent inside the
// recorder — the quantity Table III measures.
func (t *TTR) Overhead() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overhead
}
