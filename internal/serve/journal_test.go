package serve

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTestJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	jl, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { jl.Close() })
	return jl
}

// TestJournalRoundTrip appends a full job lifecycle, reopens the journal,
// and checks the recovered state: statuses, arrival order, clock
// position, and the incremented server epoch.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	if jl.ServerEpoch() != 1 {
		t.Fatalf("first incarnation epoch %d, want 1", jl.ServerEpoch())
	}
	recs := []Record{
		{Kind: recSubmit, ID: "a", ReqID: "r-a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", BatchRows: 64, At: 1},
		{Kind: recVerdict, ID: "a", Status: "admitted", At: 1},
		{Kind: recSubmit, ID: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2},
		{Kind: recVerdict, ID: "b", Status: "degraded", At: 2},
		{Kind: recGrant, ID: "a", At: 3},
		{Kind: recEpoch, ID: "a", Epochs: 1, At: 9},
		{Kind: recSubmit, ID: "c", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 10},
		{Kind: recVerdict, ID: "c", Status: "rejected", At: 10},
		{Kind: recGrant, ID: "a", At: 11},
		{Kind: recTerminal, ID: "a", Status: "attained", Epochs: 2, At: 20},
		{Kind: recClock, At: 60},
	}
	if err := jl.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	jl.Close()

	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.ServerEpoch != 2 || re.ServerEpoch() != 2 {
		t.Fatalf("second incarnation epoch %d/%d, want 2", rec.ServerEpoch, re.ServerEpoch())
	}
	if rec.VirtualNow != 60 {
		t.Fatalf("recovered clock %v, want 60", rec.VirtualNow)
	}
	if rec.DroppedBytes != 0 {
		t.Fatalf("clean journal dropped %d bytes", rec.DroppedBytes)
	}
	if len(rec.Jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(rec.Jobs), rec.Jobs)
	}
	// Arrival order is preserved.
	for i, want := range []string{"a", "b", "c"} {
		if rec.Jobs[i].ID != want {
			t.Fatalf("arrival order %v, want a,b,c", rec.Jobs)
		}
	}
	byID := map[string]JobRecord{}
	for _, j := range rec.Jobs {
		byID[j.ID] = j
	}
	if j := byID["a"]; j.Status != "attained" || j.Epochs != 2 || j.ReqID != "r-a" || j.ArrivalAt != 1 {
		t.Fatalf("job a recovered as %+v", j)
	}
	if j := byID["b"]; j.Status != "pending" || !j.BestEffort {
		t.Fatalf("degraded job b recovered as %+v", j)
	}
	if j := byID["c"]; j.Status != "rejected" {
		t.Fatalf("rejected job c recovered as %+v", j)
	}
	live := rec.NonTerminal()
	if len(live) != 1 || live[0].ID != "b" {
		t.Fatalf("non-terminal set %+v, want only b", live)
	}
	ids := re.NonTerminalIDs()
	if !ids["b"] || ids["a"] || ids["c"] {
		t.Fatalf("NonTerminalIDs %v", ids)
	}
}

// TestJournalCompaction drives the journal past a tiny compaction
// threshold and checks the file is folded into a snapshot that replays to
// the same state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	jl.SetCompactBytes(512)
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("j%02d", i)
		if err := jl.Append(
			Record{Kind: recSubmit, ID: id, Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: float64(i)},
			Record{Kind: recVerdict, ID: id, Status: "admitted", At: float64(i)},
			Record{Kind: recTerminal, ID: id, Status: "attained", At: float64(i) + 0.5},
		); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	_, compactions, size := jl.Stats()
	if compactions == 0 {
		t.Fatalf("no compaction after %d appends over a 512-byte threshold", 64*3)
	}
	if size > 64*1024 {
		t.Fatalf("journal still %d bytes after compaction", size)
	}
	jl.Close()

	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if len(rec.Jobs) != 64 {
		t.Fatalf("post-compaction replay recovered %d jobs, want 64", len(rec.Jobs))
	}
	for i, j := range rec.Jobs {
		if want := fmt.Sprintf("j%02d", i); j.ID != want || j.Status != "attained" {
			t.Fatalf("job %d recovered as %+v, want %s attained", i, j, want)
		}
	}
}

// journalWithPrefix writes a known two-job journal and returns the byte
// length of its valid content, for the corruption tests to damage.
func journalWithPrefix(t *testing.T, dir string) int64 {
	t.Helper()
	jl := openTestJournal(t, dir)
	if err := jl.Append(
		Record{Kind: recSubmit, ID: "keep", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 1},
		Record{Kind: recVerdict, ID: "keep", Status: "admitted", At: 1},
		Record{Kind: recSubmit, ID: "tail", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}
	jl.Close()
	st, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatalf("stat journal: %v", err)
	}
	return st.Size()
}

// TestJournalCorruptTruncatedTail tears the last record mid-line (a
// crash during an append): recovery must degrade to the longest valid
// prefix, not refuse to start.
func TestJournalCorruptTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	journalWithPrefix(t, dir)
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the final line's newline and half its payload.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	torn := data[:cut+(len(data)-cut)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	// The torn line was the "tail" submit itself, so only "keep" (and its
	// verdict) survive in the valid prefix.
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "keep" || rec.Jobs[0].Status != "pending" {
		t.Fatalf("prefix replay recovered %+v, want only keep (pending)", rec.Jobs)
	}
	// The journal file itself must have been truncated back to the valid
	// prefix plus the new incarnation's server-epoch record, so the next
	// restart replays cleanly.
	re.Close()
	clean := openTestJournal(t, dir)
	if got := clean.Recovered(); got.DroppedBytes != 0 {
		t.Fatalf("journal still corrupt after truncating recovery: %+v", got)
	}
}

// TestJournalCorruptBadCRC flips a payload byte in the last record (a
// bit-flipped disk block): the CRC must mark the end of the valid prefix.
func TestJournalCorruptBadCRC(t *testing.T) {
	dir := t.TempDir()
	journalWithPrefix(t, dir)
	path := filepath.Join(dir, journalFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the final record's JSON payload.
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.DroppedBytes == 0 {
		t.Fatalf("CRC mismatch not detected: %+v", rec)
	}
	// The flipped record was the "tail" submit: only the first two
	// records survive, so only "keep" is recovered.
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "keep" {
		t.Fatalf("prefix replay recovered %+v, want only keep", rec.Jobs)
	}
	if rec.Jobs[0].Status != "pending" {
		t.Fatalf("keep recovered as %q, want pending", rec.Jobs[0].Status)
	}
}

// TestJournalFrameErrorMidBatch injects a frame error on the middle
// record of a three-record group: Append must leave both the in-memory
// mirror and the file exactly as they were — the historical bug folded
// each record into memory before framing it, so a mid-batch frame error
// left memory ahead of disk and compaction could snapshot state the file
// never held.
func TestJournalFrameErrorMidBatch(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	if err := jl.Append(
		Record{Kind: recSubmit, ID: "keep", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 1},
		Record{Kind: recVerdict, ID: "keep", Status: "admitted", At: 1},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}
	appendsBefore, _, sizeBefore := jl.Stats()

	jl.frameHook = func(rec Record) ([]byte, error) {
		if rec.ID == "boom" {
			return nil, fmt.Errorf("injected frame error")
		}
		return frameJournalLine(rec)
	}
	err := jl.Append(
		Record{Kind: recSubmit, ID: "ghost", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2},
		Record{Kind: recSubmit, ID: "boom", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2},
		Record{Kind: recSubmit, ID: "late", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2},
	)
	if err == nil {
		t.Fatal("Append with injected frame error succeeded")
	}
	jl.frameHook = nil

	// Nothing from the failed group may be visible in memory — not even
	// the records framed before the error.
	for _, id := range []string{"ghost", "boom", "late"} {
		if _, ok := jl.Job(id); ok {
			t.Fatalf("record %q from failed group folded into memory", id)
		}
	}
	if appends, _, size := jl.Stats(); appends != appendsBefore || size != sizeBefore {
		t.Fatalf("failed group moved stats: appends %d→%d size %d→%d",
			appendsBefore, appends, sizeBefore, size)
	}
	// A frame error is not a torn write: the journal stays healthy.
	if err := jl.Append(Record{Kind: recClock, At: 3}); err != nil {
		t.Fatalf("append after frame error: %v", err)
	}
	jl.Close()

	// Disk agreement: a fresh replay sees exactly what memory saw.
	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.DroppedBytes != 0 {
		t.Fatalf("frame-error group left %d corrupt bytes on disk", rec.DroppedBytes)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "keep" {
		t.Fatalf("replay after frame error recovered %+v, want only keep", rec.Jobs)
	}
	if rec.VirtualNow != 3 {
		t.Fatalf("replay clock %v, want 3", rec.VirtualNow)
	}
}

// TestJournalDegradedLatchAfterTornWrite injects a write error that tears
// a frame mid-record: the journal must latch degraded and refuse further
// appends — the historical bug kept writing past the tear, and
// longest-valid-prefix recovery silently dropped every post-tear record.
func TestJournalDegradedLatchAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	if err := jl.Append(
		Record{Kind: recSubmit, ID: "keep", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 1},
		Record{Kind: recVerdict, ID: "keep", Status: "admitted", At: 1},
	); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// Write half the group's bytes for real, then fail: a torn frame now
	// ends the file.
	jl.writeHook = func(b []byte) (int, error) {
		n, _ := jl.f.Write(b[:len(b)/2])
		return n, fmt.Errorf("injected write error")
	}
	err := jl.Append(Record{Kind: recSubmit, ID: "torn", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 2})
	if err == nil {
		t.Fatal("Append with injected write error succeeded")
	}
	jl.writeHook = nil

	if jl.Degraded() == nil {
		t.Fatal("journal not latched degraded after torn write")
	}
	if _, ok := jl.Job("torn"); ok {
		t.Fatal("torn record folded into memory")
	}
	// Post-tear appends must be refused, not written past the tear where
	// replay could never read them.
	err = jl.Append(Record{Kind: recSubmit, ID: "lost", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS", At: 3})
	if err == nil || !errors.Is(err, ErrJournalDegraded) {
		t.Fatalf("post-tear append error = %v, want ErrJournalDegraded", err)
	}
	jl.Close()

	// Recovery degrades to the pre-tear prefix; nothing after the tear was
	// accepted, so nothing after the tear is lost.
	re := openTestJournal(t, dir)
	rec := re.Recovered()
	if rec.DroppedBytes == 0 {
		t.Fatalf("torn frame not detected on replay: %+v", rec)
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].ID != "keep" || rec.Jobs[0].Status != "pending" {
		t.Fatalf("post-tear replay recovered %+v, want only keep (pending)", rec.Jobs)
	}
}

// TestJournalGarbageFile starts from a file of pure garbage: everything
// is dropped, recovery proceeds from empty state.
func TestJournalGarbageFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte("not a journal\nat all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jl := openTestJournal(t, dir)
	rec := jl.Recovered()
	if rec.DroppedBytes == 0 || len(rec.Jobs) != 0 {
		t.Fatalf("garbage journal recovered %+v", rec)
	}
	// And the journal is writable again.
	if err := jl.Append(Record{Kind: recClock, At: 1}); err != nil {
		t.Fatalf("append after garbage recovery: %v", err)
	}
}
