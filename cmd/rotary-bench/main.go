// Command rotary-bench regenerates every table and figure of the paper's
// evaluation section (§V), plus the ablation studies from DESIGN.md.
//
// Usage:
//
//	rotary-bench [-experiment all|fig1a|fig1b|fig6|fig7|fig8|fig9|fig10|fig11|table1|table2|table3|ablations]
//	             [-sf 0.02] [-runs 3] [-aqp-jobs 30] [-dlt-jobs 30] [-seed 1]
//
// The control-plane microbenchmark (real wall-clock cost per arbitration
// decision, excluded from "all") is requested explicitly:
//
//	rotary-bench -experiment arbiter [-bench-out BENCH_1.json]
//	             [-bench-baseline BENCH_1.json] [-bench-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rotary"
	"rotary/internal/cliutil"
	"rotary/internal/experiments"
)

type runner struct {
	name string
	run  func(experiments.Config) (string, error)
}

func text[T any](f func(experiments.Config) (*T, error), get func(*T) string) func(experiments.Config) (string, error) {
	return func(cfg experiments.Config) (string, error) {
		r, err := f(cfg)
		if err != nil {
			return "", err
		}
		return get(r), nil
	}
}

var runners = []runner{
	{"fig1a", text(experiments.Fig1a, func(r *experiments.Fig1aResult) string { return r.Text })},
	{"fig1b", text(experiments.Fig1b, func(r *experiments.Fig1bResult) string { return r.Text })},
	{"table1", text(experiments.Table1, func(r *experiments.Table1Result) string { return r.Text })},
	{"fig6", text(experiments.Fig6, func(r *experiments.Fig6Result) string { return r.Text })},
	{"fig7", text(experiments.Fig7, func(r *experiments.Fig7Result) string { return r.Text })},
	{"fig8", text(experiments.Fig8, func(r *experiments.Fig8Result) string { return r.Text })},
	{"fig9", text(experiments.Fig9, func(r *experiments.Fig9Result) string { return r.Text })},
	{"table2", text(experiments.Table2, func(r *experiments.Table2Result) string { return r.Text })},
	{"fig10", text(experiments.Fig10, func(r *experiments.Fig10Result) string { return r.Text })},
	{"fig11", text(experiments.Fig11, func(r *experiments.Fig11Result) string { return r.Text })},
	{"table3", text(experiments.Table3, func(r *experiments.Table3Result) string { return r.Text })},
	{"ablation-epochs", text(experiments.AblationFixedEpochs, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-memory", text(experiments.AblationMemoryBlind, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-envelope", text(experiments.AblationEnvelopeWindow, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-estimator", text(experiments.AblationEstimatorSources, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-threshold", text(experiments.AblationThresholdSweep, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-materialization", text(experiments.AblationMaterialization, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-swap", text(experiments.AblationSwapOverhead, func(r *experiments.AblationResult) string { return r.Text })},
	{"ablation-arrival", text(experiments.AblationArrivalRate, func(r *experiments.AblationResult) string { return r.Text })},
	{"unified", text(experiments.Unified, func(r *experiments.UnifiedResult) string { return r.Text })},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-bench: ")
	var (
		experiment = flag.String("experiment", "all", "experiment id, 'ablations', or 'all'")
		sf         = flag.Float64("sf", 0.02, "TPC-H scale factor")
		runs       = flag.Int("runs", 3, "independent runs to average (the paper uses 3)")
		aqpJobs    = flag.Int("aqp-jobs", 30, "AQP workload size")
		dltJobs    = flag.Int("dlt-jobs", 30, "DLT workload size")
		seed       = flag.Uint64("seed", 1, "base random seed")
		traceOut   = flag.String("trace-out", "", "stream every executor trace event across all experiments as JSON lines to this file")
		metricsOut = flag.String("metrics-out", "", "write the final metrics registry (Prometheus text format) to this file")

		benchOut      = flag.String("bench-out", "", "arbiter experiment: write the benchmark report (BENCH_<n>.json schema) to this file")
		benchBaseline = flag.String("bench-baseline", "", "arbiter experiment: compare against this committed report; exit 1 on regression")
		benchQuick    = flag.Bool("bench-quick", false, "arbiter experiment: drop the 10k-queue tier (CI mode)")
	)
	flag.Parse()
	if err := cliutil.ValidateAll(
		cliutil.Positive("-sf", *sf),
		cliutil.MinInt("-runs", *runs, 1),
		cliutil.MinInt("-aqp-jobs", *aqpJobs, 1),
		cliutil.MinInt("-dlt-jobs", *dltJobs, 1),
	); err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		sink, err := rotary.OpenJSONLSink(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		// Experiment helpers build executors internally; the default tracer
		// lets every one of them stream into the single JSONL sink without
		// retaining events in memory (capacity 1 keeps the ring trivial).
		tracer := rotary.NewTracer(1)
		tracer.SetSink(sink)
		rotary.SetDefaultTracer(tracer)
	}

	cfg := experiments.Config{SF: *sf, Seed: *seed, Runs: *runs, AQPJobs: *aqpJobs, DLTJobs: *dltJobs}
	want := strings.ToLower(*experiment)

	// The arbiter microbenchmark measures real wall-clock cost, not the
	// virtual clock, so it is excluded from "all" (which must stay
	// machine-independent) and requested explicitly.
	if want == "arbiter" {
		if err := runArbiterBench(*seed, *benchOut, *benchBaseline, *benchQuick); err != nil {
			log.Fatalf("arbiter: %v", err)
		}
		return
	}

	matched := false
	for _, r := range runners {
		switch want {
		case "all":
		case "ablations":
			if !strings.HasPrefix(r.name, "ablation") {
				continue
			}
		default:
			if r.name != want {
				continue
			}
		}
		matched = true
		fmt.Printf("=== %s ===\n", r.name)
		out, err := r.run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		fmt.Println(out)
	}
	if !matched {
		log.Printf("unknown experiment %q", *experiment)
		fmt.Fprint(os.Stderr, "available:")
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, " %s", r.name)
		}
		fmt.Fprintln(os.Stderr, " arbiter")
		os.Exit(2)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(rotary.DefaultMetrics().RenderText(true)), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
}
