package estimate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
)

// DLTRecord is one completed deep learning training job in the historical
// repository. §IV-B: "All the completed jobs' information are stored,
// including model architecture, training hyperparameters, training epochs,
// and evaluation accuracy."
type DLTRecord struct {
	ID        string    `json:"id"`
	Model     string    `json:"model"`
	Family    string    `json:"family"`
	Dataset   string    `json:"dataset"`
	ParamsM   float64   `json:"params_m"`
	BatchSize int       `json:"batch_size"`
	Optimizer string    `json:"optimizer"`
	LR        float64   `json:"lr"`
	Epochs    int       `json:"epochs"`
	AccCurve  []float64 `json:"acc_curve"` // accuracy after each epoch
	PeakMemMB float64   `json:"peak_mem_mb"`
	EpochSecs float64   `json:"epoch_secs"`
}

// AQPRecord is one completed AQP job: its progress-runtime curve plus the
// query features §IV-A's similarity search keys on (predicates, tables and
// columns are summarized by the query name; the batch size is explicit).
type AQPRecord struct {
	ID        string  `json:"id"`
	Query     string  `json:"query"`
	Class     string  `json:"class"`
	BatchRows int     `json:"batch_rows"`
	Curve     []Point `json:"curve"` // (runtime seconds, accuracy progress)
}

// Repository stores historical job information. It persists to a single
// JSON file so estimation survives process restarts, and it is safe for
// concurrent use.
type Repository struct {
	mu   sync.RWMutex
	dlt  []DLTRecord
	aqp  []AQPRecord
	path string
	// version advances on every record mutation. Estimators backed by the
	// repository expose it through EstimatorVersion so the arbitration
	// fast path can tell when a cached decision's inputs moved.
	version uint64
}

// Version reports the mutation counter: it advances every time a record
// is added or removed, so two equal Version values bracket a span in
// which every estimate over the repository was reproducible.
func (r *Repository) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// NewRepository returns an empty in-memory repository.
func NewRepository() *Repository { return &Repository{} }

// OpenRepository loads (or creates) a repository backed by the JSON file
// at path. Saves write back to the same file.
func OpenRepository(path string) (*Repository, error) {
	r := &Repository{path: path}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("estimate: open repository: %w", err)
	}
	var disk repoFile
	if err := json.Unmarshal(data, &disk); err != nil {
		return nil, fmt.Errorf("estimate: parse repository %s: %w", path, err)
	}
	r.dlt = disk.DLT
	r.aqp = disk.AQP
	return r, nil
}

type repoFile struct {
	DLT []DLTRecord `json:"dlt"`
	AQP []AQPRecord `json:"aqp"`
}

// Save writes the repository to its backing file; it is a no-op for
// in-memory repositories.
func (r *Repository) Save() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(repoFile{DLT: r.dlt, AQP: r.aqp}, "", " ")
	if err != nil {
		return fmt.Errorf("estimate: encode repository: %w", err)
	}
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("estimate: write repository: %w", err)
	}
	return os.Rename(tmp, r.path)
}

// Clone returns an in-memory copy of the repository's records. Runs that
// record their own history into the repository use clones so a shared
// seeded baseline stays pristine.
func (r *Repository) Clone() *Repository {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := NewRepository()
	c.dlt = append([]DLTRecord(nil), r.dlt...)
	c.aqp = append([]AQPRecord(nil), r.aqp...)
	return c
}

// AddDLT stores a completed DLT job.
func (r *Repository) AddDLT(rec DLTRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dlt = append(r.dlt, rec)
	r.version++
}

// AddAQP stores a completed AQP job.
func (r *Repository) AddAQP(rec AQPRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aqp = append(r.aqp, rec)
	r.version++
}

// DLTCount and AQPCount report stored record counts.
func (r *Repository) DLTCount() int { r.mu.RLock(); defer r.mu.RUnlock(); return len(r.dlt) }

// AQPCount reports the number of stored AQP records.
func (r *Repository) AQPCount() int { r.mu.RLock(); defer r.mu.RUnlock(); return len(r.aqp) }

// RemoveDLT deletes records matching keep==false, returning how many were
// removed. The Fig. 11 ablation uses it to strip the NLP history.
func (r *Repository) RemoveDLT(keep func(DLTRecord) bool) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := r.dlt[:0]
	removed := 0
	for _, rec := range r.dlt {
		if keep(rec) {
			kept = append(kept, rec)
		} else {
			removed++
		}
	}
	r.dlt = kept
	if removed > 0 {
		r.version++
	}
	return removed
}

// DLTQuery describes a target job for similarity search.
type DLTQuery struct {
	Model     string
	Family    string
	Dataset   string
	ParamsM   float64
	BatchSize int
	Optimizer string
	LR        float64
}

// scored pairs a record with its similarity to a query.
type scoredDLT struct {
	rec   DLTRecord
	score float64
}

// dltSimilarity scores a historical record against a target job on the
// §IV-B metadata: training dataset, hyperparameters (learning rate, batch
// size, optimizer), and architecture family. requireDataset restricts the
// match to same-dataset records.
func dltSimilarity(q DLTQuery, rec DLTRecord, requireDataset bool) float64 {
	s := 0.0
	if rec.Dataset == q.Dataset {
		s += 0.20
	} else if requireDataset {
		return 0
	}
	if rec.Family == q.Family {
		s += 0.25
	}
	if rec.Model == q.Model {
		s += 0.10
	}
	if rec.Optimizer == q.Optimizer {
		s += 0.15
	}
	s += 0.10 * Similarity(float64(rec.BatchSize), float64(q.BatchSize))
	// Learning rates live on a log scale: 1e-5 vs 1e-2 must score near
	// zero while 1e-2 vs 3e-2 scores high, or similarity search retrieves
	// well-tuned history for hopelessly-tuned jobs (and TEE then predicts
	// convergence that will never come).
	s += 0.20 * logSimilarity(rec.LR, q.LR)
	return s
}

// logSimilarity compares two positive magnitudes on a log10 scale,
// decaying by half per decade of distance.
func logSimilarity(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	d := math.Abs(math.Log10(a / b))
	return math.Exp(-0.7 * d)
}

// TopKSimilarDLT returns the k most similar historical DLT jobs to the
// query, best first. Same-dataset records are preferred; when none exist
// the search relaxes to dissimilar (cross-dataset) records — §V-B3's
// regime, where "the estimation … [is] unreliable and even erroneous"
// after the matching history is removed. Fewer than k records may be
// returned.
func (r *Repository) TopKSimilarDLT(q DLTQuery, k int) []DLTRecord {
	recs, _ := r.TopKSimilarDLTScored(q, k)
	return recs
}

// TopKSimilarDLTScored is TopKSimilarDLT plus the similarity scores,
// which TEE uses to weight the records within the historical share.
func (r *Repository) TopKSimilarDLTScored(q DLTQuery, k int) ([]DLTRecord, []float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, requireDataset := range []bool{true, false} {
		scored := make([]scoredDLT, 0, len(r.dlt))
		for _, rec := range r.dlt {
			if s := dltSimilarity(q, rec, requireDataset); s > 0 {
				scored = append(scored, scoredDLT{rec, s})
			}
		}
		if len(scored) == 0 {
			continue
		}
		sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })
		if len(scored) > k {
			scored = scored[:k]
		}
		out := make([]DLTRecord, len(scored))
		ws := make([]float64, len(scored))
		for i, s := range scored {
			out[i] = s.rec
			ws[i] = s.score
		}
		return out, ws
	}
	return nil, nil
}

// TopKSimilarBySize returns the k historical DLT jobs on the same dataset
// most similar in model size (§IV-B's TME retrieval), best first,
// together with their similarity weights.
func (r *Repository) TopKSimilarBySize(dataset string, paramsM float64, k int) ([]DLTRecord, []float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	scored := make([]scoredDLT, 0, len(r.dlt))
	for _, rec := range r.dlt {
		if rec.Dataset != dataset {
			continue
		}
		scored = append(scored, scoredDLT{rec, Similarity(rec.ParamsM, paramsM)})
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })
	if len(scored) > k {
		scored = scored[:k]
	}
	recs := make([]DLTRecord, len(scored))
	ws := make([]float64, len(scored))
	for i, s := range scored {
		recs[i] = s.rec
		ws[i] = s.score
	}
	return recs, ws
}

// TopKSimilarAQP returns the k most similar historical AQP jobs: exact
// query-name matches first (same predicates, tables, columns), then
// same-class queries, ranked by batch-size similarity within each tier.
func (r *Repository) TopKSimilarAQP(query, class string, batchRows, k int) []AQPRecord {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type scoredAQP struct {
		rec   AQPRecord
		score float64
	}
	scored := make([]scoredAQP, 0, len(r.aqp))
	for _, rec := range r.aqp {
		var s float64
		switch {
		case rec.Query == query:
			s = 2
		case rec.Class == class:
			s = 1
		default:
			continue
		}
		s += Similarity(float64(rec.BatchRows), float64(batchRows))
		scored = append(scored, scoredAQP{rec, s})
	}
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })
	if len(scored) > k {
		scored = scored[:k]
	}
	out := make([]AQPRecord, len(scored))
	for i, s := range scored {
		out[i] = s.rec
	}
	return out
}
