package core_test

import (
	"testing"

	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// mkAQPCtx builds a context of fresh jobs over a shared tiny catalog.
func mkAQPCtx(t *testing.T, queries []string, freeThreads int, freeMem float64) (*core.AQPContext, []*core.AQPJob) {
	t.Helper()
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	var jobs []*core.AQPJob
	for i, q := range queries {
		cls, _ := tpch.ClassOf(q)
		j, err := workload.BuildAQPJob(cat, workload.AQPSpec{
			ID: string(rune('a'+i)) + "-" + q, Query: q, Class: cls,
			Accuracy: 0.8, DeadlineSecs: 2000, BatchRows: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	return &core.AQPContext{
		Pending:      jobs,
		FreeThreads:  freeThreads,
		TotalThreads: freeThreads,
		FreeMemMB:    freeMem,
		TotalMemMB:   freeMem,
	}, jobs
}

func TestRotaryAQPAdaptiveEpochsProportionalToMemory(t *testing.T) {
	ctx, jobs := mkAQPCtx(t, []string{"q6", "q9"}, 8, 1e6)
	sched := core.NewRotaryAQP(nil)
	sched.Assign(ctx)
	light, heavy := jobs[0], jobs[1]
	if heavy.EpochBatches() <= light.EpochBatches() {
		t.Errorf("heavy q9 epoch %d batches not above light q6's %d",
			heavy.EpochBatches(), light.EpochBatches())
	}
	// Fixed-epoch variant leaves the defaults.
	ctx2, jobs2 := mkAQPCtx(t, []string{"q6", "q9"}, 8, 1e6)
	fixed := core.NewRotaryAQP(nil)
	fixed.AdaptiveEpochs = false
	fixed.Assign(ctx2)
	if jobs2[0].EpochBatches() != jobs2[1].EpochBatches() {
		t.Errorf("fixed-epoch variant adapted epochs: %d vs %d",
			jobs2[0].EpochBatches(), jobs2[1].EpochBatches())
	}
}

func TestRotaryAQPMemoryAwareAdmission(t *testing.T) {
	// A budget fitting only the light job: the heavy one must be deferred.
	ctx, jobs := mkAQPCtx(t, []string{"q9", "q6"}, 8, 0)
	light := jobs[1]
	ctx.FreeMemMB = light.EstMemMB() * 1.1
	ctx.TotalMemMB = ctx.FreeMemMB
	sched := core.NewRotaryAQP(nil)
	grants := sched.Assign(ctx)
	if len(grants) != 1 || grants[0].Job != light {
		ids := make([]string, len(grants))
		for i, g := range grants {
			ids[i] = g.Job.ID()
		}
		t.Fatalf("granted %v, want only the light job", ids)
	}
	// The memory-blind variant admits both.
	ctx2, _ := mkAQPCtx(t, []string{"q9", "q6"}, 8, 0)
	ctx2.FreeMemMB = light.EstMemMB() * 1.1
	ctx2.TotalMemMB = ctx2.FreeMemMB
	blind := core.NewRotaryAQP(nil)
	blind.MemoryAware = false
	if got := len(blind.Assign(ctx2)); got != 2 {
		t.Fatalf("memory-blind variant granted %d jobs, want 2", got)
	}
}

func TestRotaryAQPTrialJobsFirst(t *testing.T) {
	ctx, jobs := mkAQPCtx(t, []string{"q6", "q12"}, 1, 1e6)
	// Give the first job some history so it is no longer a trial.
	ran := jobs[0]
	ran.Query().ProcessBatch(200, 1)
	forceEpochObserved(t, ran)
	sched := core.NewRotaryAQP(nil)
	grants := sched.Assign(ctx)
	if len(grants) != 1 || grants[0].Job != jobs[1] {
		t.Fatalf("single thread went to %s, want the never-run trial job", grants[0].Job.ID())
	}
}

// forceEpochObserved simulates one completed epoch's bookkeeping via a
// tiny executor round.
func forceEpochObserved(t *testing.T, j *core.AQPJob) {
	t.Helper()
	cfg := core.DefaultAQPExecConfig(1e6)
	cfg.Threads = 1
	exec := core.NewAQPExecutor(cfg, onceAQP{j}, nil)
	exec.Submit(j, 0)
	exec.Engine().RunUntil(1e9)
	if j.Epochs() == 0 {
		t.Fatal("setup failed: job never ran an epoch")
	}
}

// onceAQP grants one epoch to a designated job, then goes idle.
type onceAQP struct{ target *core.AQPJob }

func (o onceAQP) Name() string { return "once" }

func (o onceAQP) Assign(ctx *core.AQPContext) []core.AQPGrant {
	if o.target.Epochs() > 0 {
		return nil
	}
	for _, j := range ctx.Pending {
		if j == o.target {
			return []core.AQPGrant{{Job: j, Threads: 1, ReserveMemMB: 0}}
		}
	}
	return nil
}

func TestRotaryAQPGreedyExtrasRespectCap(t *testing.T) {
	ctx, _ := mkAQPCtx(t, []string{"q6", "q12", "q14"}, 20, 1e6)
	sched := core.NewRotaryAQP(estimate.NewAccuracyProgress(estimate.NewRepository(), 3))
	grants := sched.Assign(ctx)
	if len(grants) != 3 {
		t.Fatalf("granted %d jobs, want 3", len(grants))
	}
	total := 0
	for _, g := range grants {
		if g.Threads > sched.MaxThreadsPerJob {
			t.Errorf("%s granted %d threads over the %d cap", g.Job.ID(), g.Threads, sched.MaxThreadsPerJob)
		}
		total += g.Threads
	}
	// The whole pool is used (20 threads across 3 jobs capped at 8 each
	// can absorb it all), never over-granted.
	if total != ctx.FreeThreads {
		t.Errorf("total threads %d, want the full pool %d", total, ctx.FreeThreads)
	}
}
