package stream

import (
	"testing"
	"testing/quick"
)

func intRecords(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestConsumerDrainsEverythingOnce(t *testing.T) {
	topic := NewTopic("t", intRecords(1000), 4)
	c := NewConsumer(topic)
	seen := make(map[int]bool)
	for {
		batch, ok := c.NextBatch(77)
		if !ok {
			break
		}
		for _, v := range batch {
			if seen[v] {
				t.Fatalf("record %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("delivered %d of 1000 records", len(seen))
	}
	if c.Progress() != 1 || c.Remaining() != 0 {
		t.Fatalf("progress=%v remaining=%d after drain", c.Progress(), c.Remaining())
	}
}

// Consumption order must not depend on the batch sizes used — queries
// with order-sensitive state rely on this to agree with the ground-truth
// pass.
func TestOrderIsBatchSizeInvariant(t *testing.T) {
	topic := NewShuffledTopic("t", intRecords(500), 4, 9)
	drain := func(sizes []int) []int {
		c := NewConsumer(topic)
		var out []int
		i := 0
		for {
			n := sizes[i%len(sizes)]
			i++
			batch, ok := c.NextBatch(n)
			if !ok {
				break
			}
			out = append(out, batch...)
		}
		return out
	}
	a := drain([]int{1})
	b := drain([]int{7, 13, 200})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestShuffledTopicIsSeededPermutation(t *testing.T) {
	a := NewShuffledTopic("t", intRecords(200), 3, 5)
	b := NewShuffledTopic("t", intRecords(200), 3, 5)
	ca, cb := NewConsumer(a), NewConsumer(b)
	ba, _ := ca.NextBatch(200)
	bb, _ := cb.NextBatch(200)
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
	c := NewShuffledTopic("t", intRecords(200), 3, 6)
	cc := NewConsumer(c)
	bc, _ := cc.NextBatch(200)
	same := 0
	for i := range ba {
		if ba[i] == bc[i] {
			same++
		}
	}
	if same == 200 {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestOffsetsSeekRoundTrip(t *testing.T) {
	topic := NewTopic("t", intRecords(300), 4)
	c1 := NewConsumer(topic)
	c1.NextBatch(113)
	state := c1.Offsets()

	c2 := NewConsumer(topic)
	if err := c2.Seek(state); err != nil {
		t.Fatal(err)
	}
	if c2.Read() != c1.Read() {
		t.Fatalf("read count %d vs %d after seek", c2.Read(), c1.Read())
	}
	r1, _ := c1.NextBatch(300)
	r2, _ := c2.NextBatch(300)
	if len(r1) != len(r2) {
		t.Fatalf("remaining lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("post-seek order diverges at %d", i)
		}
	}
}

func TestSeekRejectsBadState(t *testing.T) {
	topic := NewTopic("t", intRecords(10), 2)
	c := NewConsumer(topic)
	if err := c.Seek(ConsumerState{Offsets: []int{0}}); err == nil {
		t.Error("seek accepted wrong partition count")
	}
	if err := c.Seek(ConsumerState{Offsets: []int{0, 99}}); err == nil {
		t.Error("seek accepted out-of-range offset")
	}
	if err := c.Seek(ConsumerState{Offsets: []int{0, -1}}); err == nil {
		t.Error("seek accepted negative offset")
	}
}

func TestProgressMonotonic(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n)%200 + 1
		topic := NewShuffledTopic("t", intRecords(size), 3, seed)
		c := NewConsumer(topic)
		prev := 0.0
		for {
			_, ok := c.NextBatch(7)
			p := c.Progress()
			if p < prev || p > 1 {
				return false
			}
			prev = p
			if !ok {
				break
			}
		}
		return prev == 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndZeroBatch(t *testing.T) {
	topic := NewTopic[int]("empty", nil, 4)
	c := NewConsumer(topic)
	if _, ok := c.NextBatch(10); ok {
		t.Error("empty topic returned a batch")
	}
	if c.Progress() != 1 {
		t.Error("empty topic progress should be 1")
	}
	topic2 := NewTopic("t", intRecords(5), 1)
	c2 := NewConsumer(topic2)
	if _, ok := c2.NextBatch(0); ok {
		t.Error("zero-size batch returned records")
	}
}

// The partitioned draw must consume exactly the record set the
// interleaved draw would, call by call, and land on the identical
// serialized consumer state — checkpoints are interchangeable between
// the two data paths.
func TestNextBatchPartitionedMatchesInterleaved(t *testing.T) {
	check := func(seed uint64, nparts uint8) bool {
		parts := int(nparts)%7 + 1
		topic := NewTopic("t", intRecords(500), parts)
		seq := NewConsumer(topic)
		par := NewConsumer(topic)
		sizes := []int{1, 7, 77, 13, 500, 3}
		for i := 0; ; i++ {
			n := sizes[i%len(sizes)]
			batch, okSeq := seq.NextBatch(n)
			runs, okPar := par.NextBatchPartitioned(n)
			if okSeq != okPar {
				return false
			}
			if !okSeq {
				break
			}
			want := make(map[int]bool, len(batch))
			for _, v := range batch {
				want[v] = true
			}
			got := 0
			for _, run := range runs {
				for _, v := range run {
					if !want[v] {
						return false
					}
					got++
				}
			}
			if got != len(batch) {
				return false
			}
			a, b := seq.Offsets(), par.Offsets()
			if a.Next != b.Next || a.Read != b.Read {
				return false
			}
			for p := range a.Offsets {
				if a.Offsets[p] != b.Offsets[p] {
					return false
				}
			}
		}
		return seq.Read() == par.Read() && par.Remaining() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Partition runs are contiguous slices of the partition in its own
// order: concatenating the runs across calls replays each partition
// exactly, at any batch sizing.
func TestNextBatchPartitionedPreservesPartitionOrder(t *testing.T) {
	const parts = 5
	topic := NewTopic("t", intRecords(403), parts)
	c := NewConsumer(topic)
	replay := make([][]int, parts)
	for {
		runs, ok := c.NextBatchPartitioned(41)
		if !ok {
			break
		}
		if len(runs) != parts {
			t.Fatalf("got %d runs for %d partitions", len(runs), parts)
		}
		for p, run := range runs {
			replay[p] = append(replay[p], run...)
		}
	}
	for p := 0; p < parts; p++ {
		want := 0
		for _, v := range replay[p] {
			// NewTopic splits round-robin: partition p holds p, p+parts, …
			if v != p+want*parts {
				t.Fatalf("partition %d replay[%d] = %d, want %d", p, want, v, p+want*parts)
			}
			want++
		}
		if len(replay[p]) != len(topic.partitions[p]) {
			t.Fatalf("partition %d replayed %d of %d records", p, len(replay[p]), len(topic.partitions[p]))
		}
	}
}

// A consumer checkpointed mid-stream on the partitioned path resumes on
// either path from the same state.
func TestNextBatchPartitionedSeekRoundTrip(t *testing.T) {
	topic := NewTopic("t", intRecords(300), 4)
	c1 := NewConsumer(topic)
	c1.NextBatchPartitioned(113)
	state := c1.Offsets()

	c2 := NewConsumer(topic)
	if err := c2.Seek(state); err != nil {
		t.Fatal(err)
	}
	r1, _ := c1.NextBatch(300)
	r2, _ := c2.NextBatch(300)
	if len(r1) != len(r2) {
		t.Fatalf("post-seek drains differ: %d vs %d records", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("post-seek record %d: %d vs %d", i, r1[i], r2[i])
		}
	}
}

// Degenerate draws: n <= 0 and exhausted topics return ok == false.
func TestNextBatchPartitionedDegenerate(t *testing.T) {
	topic := NewTopic("t", intRecords(10), 3)
	c := NewConsumer(topic)
	if _, ok := c.NextBatchPartitioned(0); ok {
		t.Error("n=0 returned records")
	}
	if _, ok := c.NextBatchPartitioned(-1); ok {
		t.Error("n<0 returned records")
	}
	c.NextBatchPartitioned(100)
	if _, ok := c.NextBatchPartitioned(1); ok {
		t.Error("exhausted topic returned records")
	}
	empty := NewConsumer(NewTopic("e", intRecords(0), 2))
	if _, ok := empty.NextBatchPartitioned(5); ok {
		t.Error("empty topic returned records")
	}
}
