package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// TestJournalCompactionRacingSubmits hammers a durable server with
// concurrent submitters and a stats/metrics poller while the journal's
// compaction threshold is set low enough to fold the log repeatedly
// mid-storm. Run under -race in CI. The property: compaction racing
// live appends loses nothing — every submit is journaled, and a
// post-kill replay recovers the full registry.
func TestJournalCompactionRacingSubmits(t *testing.T) {
	base := t.TempDir()
	dir := base + "/state"
	socket := base + "/rotary.sock"

	jl, store, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	jl.SetCompactBytes(2048) // compact constantly under the submit storm
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	cfg.Store = store
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	srv, err := New(Config{Socket: socket, Pace: 0, Obs: reg, Journal: jl}, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wg := serveAsync(t, srv)

	const workers, per = 3, 16
	queries := []string{"q1", "q3", "q5", "q6"}
	// Statements are drawn from a seeded stream up front, so the workload
	// is reproducible even though goroutine interleaving is not.
	rng := sim.NewRand(97)
	stmts := make([][]string, workers)
	for w := range stmts {
		for i := 0; i < per; i++ {
			stmts[w] = append(stmts[w], fmt.Sprintf("%s ACC MIN %.0f%% WITHIN 900 SECONDS",
				queries[rng.IntN(len(queries))], rng.Range(50, 70)))
		}
	}

	// roundTrip is goroutine-safe test plumbing: errors are returned, not
	// Fatal'd (FailNow must stay on the test goroutine).
	roundTrip := func(sc *bufio.Scanner, enc *json.Encoder, m Message) (Response, error) {
		if err := enc.Encode(m); err != nil {
			return Response{}, err
		}
		if !sc.Scan() {
			return Response{}, fmt.Errorf("no reply: %v", sc.Err())
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			return Response{}, err
		}
		return resp, nil
	}
	errc := make(chan error, workers+1)
	var race sync.WaitGroup
	for w := 0; w < workers; w++ {
		race.Add(1)
		go func(w int) {
			defer race.Done()
			conn, err := net.Dial("unix", socket)
			if err != nil {
				errc <- err
				return
			}
			defer conn.Close()
			sc, enc := bufio.NewScanner(conn), json.NewEncoder(conn)
			for i := 0; i < per; i++ {
				resp, err := roundTrip(sc, enc, Message{
					Op: "submit", ID: fmt.Sprintf("cr-%d-%d", w, i),
					ReqID: fmt.Sprintf("req-%d-%d", w, i), Statement: stmts[w][i],
				})
				if err != nil {
					errc <- err
					return
				}
				if !resp.OK {
					errc <- fmt.Errorf("submit cr-%d-%d refused: %+v", w, i, resp)
					return
				}
				if i%4 == 3 {
					// Interleave clock advances so grant/epoch records land in
					// the journal between the racing submits.
					if _, err := roundTrip(sc, enc, Message{Op: "advance", Seconds: 1}); err != nil {
						errc <- err
						return
					}
				}
			}
		}(w)
	}
	race.Add(1)
	go func() { // a reader racing the writers: stats, status, metrics
		defer race.Done()
		conn, err := net.Dial("unix", socket)
		if err != nil {
			errc <- err
			return
		}
		defer conn.Close()
		sc, enc := bufio.NewScanner(conn), json.NewEncoder(conn)
		sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
		for i := 0; i < 50; i++ {
			for _, m := range []Message{{Op: "stats"}, {Op: "status", ID: "cr-0-0"}, {Op: "metrics"}} {
				if _, err := roundTrip(sc, enc, m); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	race.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if _, compactions, _ := jl.Stats(); compactions == 0 {
		t.Fatalf("no compaction ran during the storm — threshold premise broken")
	}
	c := dial(t, socket)
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			id := fmt.Sprintf("cr-%d-%d", w, i)
			if resp := c.call(t, Message{Op: "status", ID: id}); !resp.OK {
				t.Fatalf("job %s lost under compaction: %+v", id, resp)
			}
		}
	}
	// Kill without flushing, replay: the folded journal still carries all
	// 48 submits.
	srv.Kill()
	wg.Wait()
	jl2, store2, err := OpenDurable(dir)
	if err != nil {
		t.Fatalf("replay after kill: %v", err)
	}
	defer jl2.Close()
	defer store2.Close()
	rec := jl2.Recovered()
	if len(rec.Jobs) != workers*per {
		t.Fatalf("replay recovered %d jobs, want %d", len(rec.Jobs), workers*per)
	}
	seen := map[string]bool{}
	for _, j := range rec.Jobs {
		seen[j.ID] = true
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			if id := fmt.Sprintf("cr-%d-%d", w, i); !seen[id] {
				t.Fatalf("job %s missing from the replayed registry", id)
			}
		}
	}
}
