package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientStalledServerTimeout: a server that accepts connections but
// never replies must surface as a typed ErrTimeout within the
// configured bound — never an indefinite hang.
func TestClientStalledServerTimeout(t *testing.T) {
	socket := filepath.Join(t.TempDir(), "stall.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // accept, read nothing, reply never
		}
	}()

	cl, err := NewClient(ClientConfig{
		Socket:         socket,
		Backoff:        5 * time.Millisecond,
		Attempts:       2,
		RequestTimeout: 75 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Do(Message{Op: "health"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("Do succeeded against a stalled server")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("stalled server produced %v, want errors.Is(err, ErrTimeout)", err)
	}
	// 2 attempts x 75ms, plus backoff and slack: well under 5s either way.
	if elapsed > 5*time.Second {
		t.Fatalf("timed out after %v, deadline not enforced", elapsed)
	}
}

// degradedScriptServer is a scripted protocol server for the retry
// tests: it answers the resume handshake, refuses the first `refuse`
// non-resume requests with journal-degraded (plus a tiny retry hint),
// then answers OK. It counts the refusals it dealt.
func degradedScriptServer(t *testing.T, refuse int32) (string, *atomic.Int32) {
	t.Helper()
	socket := filepath.Join(t.TempDir(), "degraded.sock")
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	var refused atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					var m Message
					if json.Unmarshal(sc.Bytes(), &m) != nil {
						return
					}
					var resp Response
					switch {
					case m.Op == "resume":
						resp = Response{OK: true, ServerEpoch: 1}
					case refused.Load() < refuse:
						refused.Add(1)
						resp = Response{
							Error:          "serve: journal degraded: injected",
							Code:           CodeJournalDegraded,
							RetryAfterSecs: 0.005,
						}
					default:
						resp = Response{OK: true, ID: m.ID, Status: "running"}
					}
					b, _ := json.Marshal(resp)
					if _, err := conn.Write(append(b, '\n')); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return socket, &refused
}

// TestClientRetriesJournalDegraded: with RetryHinted, a journal-degraded
// refusal is transient — the client sleeps the server's retry_after_secs
// hint and re-sends, outliving the fault window without surfacing an
// error. The degradation here is scripted to clear after two refusals,
// standing in for the server-side heal prober lifting the latch.
func TestClientRetriesJournalDegraded(t *testing.T) {
	socket, refused := degradedScriptServer(t, 2)
	cl, err := NewClient(ClientConfig{
		Socket:      socket,
		RetryHinted: true,
		Attempts:    5,
		Backoff:     time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	resp, err := cl.Do(Message{Op: "submit", ID: "j1", ReqID: "r1", Statement: "q5 ACC MIN 80% WITHIN 900 SECONDS"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if !resp.OK || resp.Code == CodeJournalDegraded {
		t.Fatalf("retry did not outlive the degraded window: %+v", resp)
	}
	if got := refused.Load(); got != 2 {
		t.Fatalf("server refused %d times, want 2", got)
	}
}

// TestClientJournalDegradedSurfacedWithoutOptIn: without RetryHinted the
// typed refusal is surfaced on the first reply (nil error, Code set) so
// callers keep full control over degraded-mode policy.
func TestClientJournalDegradedSurfacedWithoutOptIn(t *testing.T) {
	socket, refused := degradedScriptServer(t, 1<<30)
	cl, err := NewClient(ClientConfig{Socket: socket, Attempts: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	resp, err := cl.Do(Message{Op: "submit", ID: "j1", Statement: "q5 ACC MIN 80% WITHIN 900 SECONDS"})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Code != CodeJournalDegraded {
		t.Fatalf("want the typed refusal surfaced, got %+v", resp)
	}
	if resp.RetryAfterSecs <= 0 {
		t.Fatalf("degraded refusal carried no retry hint: %+v", resp)
	}
	if got := refused.Load(); got != 1 {
		t.Fatalf("client retried %d times without opt-in, want exactly 1 refusal", got)
	}
}

// TestClientRequestTimeoutDisabled: a negative RequestTimeout disables
// the deadline — the round trip against a healthy server succeeds.
func TestClientRequestTimeoutDisabled(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()

	cl, err := NewClient(ClientConfig{Socket: socket, RequestTimeout: -1})
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	defer cl.Close()
	if r, err := cl.Do(Message{Op: "health"}); err != nil || !r.OK {
		t.Fatalf("health with disabled deadline: %v %+v", err, r)
	}
}
