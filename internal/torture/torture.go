// Package torture is the composed-fault proving ground behind
// cmd/rotary-chaos: one seeded run boots a durable arbiter over a
// fault-injectable disk, drives open-loop loadgen traffic at it, and —
// while the traffic is in flight — composes the fault families every
// prior chaos suite proved in isolation: disk-fault windows (ENOSPC /
// EIO bursts that must heal without a restart), process kills (journal
// replay must resurrect every acked job), and connection faults
// (mid-frame drops, stalled peers, hostile bytes — the server must
// shrug). After the storm it audits the wreckage against the
// durability invariants:
//
//	acked ⊆ journal   every submit the server acked is replayed from
//	                  the journal chain — an ack is a durability
//	                  promise, and losing one is the cardinal failure
//	unique ids        the journal registry holds no duplicate job ids
//	                  (req_id dedupe held through every fault window)
//	monotonic epochs  each observed incarnation's server epoch strictly
//	                  increases — no restart ever rewound identity
//	ledger agreement  the resume handshake, the obs counter, and an
//	                  independent read-only journal replay agree on the
//	                  recovered-job count
//
// Everything is deterministic per seed except wall-clock interleaving:
// the fault schedule, the fault windows, and the traffic identity all
// derive from Config.Seed, so a red seed reproduces locally.
package torture

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/loadgen"
	"rotary/internal/obs"
	"rotary/internal/serve"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Config parameterizes one torture run.
type Config struct {
	// Seed drives the fault schedule, fault windows, and traffic naming.
	Seed uint64
	// Dir is the durable state directory (journal chain + checkpoints).
	Dir string
	// Socket is the Unix socket the tortured server listens on.
	Socket string
	// Rounds is how many fault rounds are composed, each under live
	// traffic. Defaults to 4.
	Rounds int
	// Ops is the open-loop submits per round. Defaults to 120.
	Ops int
	// Rate is the open-loop arrival rate per round (submits/sec).
	// Defaults to 300.
	Rate float64
	// Conns is the loadgen connection pool per round. Defaults to 4.
	Conns int
	// SF is the TPC-H scale factor for the server's catalog. Defaults to
	// 0.005 — the smallest dataset the statements resolve against.
	SF float64
	// ArtifactDir, when set, receives the invariant report and the
	// journal segment chain whenever a run fails — the offline-debugging
	// bundle CI uploads.
	ArtifactDir string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// RoundReport is one fault round's outcome.
type RoundReport struct {
	Round    int    `json:"round"`
	Fault    string `json:"fault"`
	WindowMs int    `json:"window_ms,omitempty"`
	Acked    int64  `json:"acked"`
	Degraded int64  `json:"degraded"`
	Refused  int64  `json:"refused"`
	Errors   int64  `json:"errors"`
	Epoch    int    `json:"epoch"`
}

// Report is the audited outcome of one seeded torture run.
type Report struct {
	Seed   uint64        `json:"seed"`
	Rounds []RoundReport `json:"rounds"`

	Acked      int   `json:"acked"`
	Degraded   int64 `json:"degraded"`
	Kills      int   `json:"kills"`
	DiskFaults int   `json:"disk_faults"`
	ConnFaults int   `json:"conn_faults"`
	Heals      int   `json:"heals"`

	Epochs          []int `json:"epochs"`
	JournalJobs     int   `json:"journal_jobs"`
	JournalLive     int   `json:"journal_live"`
	ResumeRecovered int   `json:"resume_recovered"`
	ObsRecovered    int   `json:"obs_recovered"`

	AckedLost    []string `json:"acked_lost,omitempty"`
	DuplicateIDs []string `json:"duplicate_ids,omitempty"`
	Failures     []string `json:"failures,omitempty"`
	OK           bool     `json:"ok"`
}

// fail records one invariant violation.
func (r *Report) fail(format string, args ...any) {
	r.OK = false
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// harness owns the tortured server's lifecycle: the faulty disk layer
// persists across restarts (a real disk does not get replaced when the
// process does), everything else is rebuilt per incarnation exactly
// like a supervised shard restart.
type harness struct {
	cfg    Config
	ds     *tpch.Dataset
	faulty *diskio.Faulty
	jl     *serve.Journal
	srv    *serve.Server
	done   chan struct{}
}

func (h *harness) start() error {
	jl, store, err := serve.OpenDurableIO(h.cfg.Dir, h.faulty)
	if err != nil {
		return fmt.Errorf("torture: open durable state: %w", err)
	}
	reg := obs.NewRegistry()
	cat := tpch.NewCatalog(h.ds, h.cfg.Seed)
	ecfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	ecfg.Obs = reg
	ecfg.Store = store
	exec := core.NewAQPExecutor(ecfg, baselines.RoundRobinAQP{}, nil)
	srv, err := serve.New(serve.Config{
		Socket:        h.cfg.Socket,
		Pace:          0, // clock frozen: round outcomes are fault-driven, not time-driven
		HealProbeSecs: 0.02,
		// The torture server never gives up probing: supervised
		// escalation past the heal budget is proven separately (the shard
		// suite), and here a capped prober would turn a long fault window
		// into a permanent wedge instead of a heal we can assert on.
		MaxHealFailures: 1 << 30,
		Obs:             reg,
		Journal:         jl,
	}, exec, cat)
	if err != nil {
		jl.Close()
		store.Close()
		return fmt.Errorf("torture: start server: %w", err)
	}
	done := make(chan struct{})
	go func() {
		srv.Serve()
		close(done)
	}()
	h.jl, h.srv, h.done = jl, srv, done
	return nil
}

// kill tears the incarnation down the unclean way and waits for the
// serve loop to exit (Kill releases the journal handle, so the next
// start reopens cleanly — same contract as the shard supervisor).
func (h *harness) kill() {
	h.srv.Kill()
	<-h.done
}

// Run executes one seeded torture run and audits the invariants.
func Run(cfg Config) (*Report, error) {
	if cfg.Dir == "" || cfg.Socket == "" {
		return nil, fmt.Errorf("torture: Dir and Socket are required")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 120
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 300
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.SF <= 0 {
		cfg.SF = 0.005
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := sim.NewRand(cfg.Seed ^ 0x7047)
	rep := &Report{Seed: cfg.Seed, OK: true}

	h := &harness{
		cfg:    cfg,
		ds:     tpch.Generate(cfg.SF, cfg.Seed),
		faulty: diskio.NewFaulty(nil, diskio.FaultConfig{Seed: cfg.Seed}),
	}
	if err := h.start(); err != nil {
		return nil, err
	}
	defer func() {
		if h.srv != nil {
			h.kill()
		}
	}()

	ctl, err := serve.NewClient(serve.ClientConfig{
		Socket:         cfg.Socket,
		Attempts:       50,
		Backoff:        20 * time.Millisecond,
		MaxBackoff:     200 * time.Millisecond,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		return nil, fmt.Errorf("torture: control client: %w", err)
	}
	defer ctl.Close()

	resume, err := ctl.Do(serve.Message{Op: "resume"})
	if err != nil {
		return nil, fmt.Errorf("torture: initial resume: %w", err)
	}
	rep.Epochs = append(rep.Epochs, resume.ServerEpoch)

	// ackedIDs is the promise ledger: every id the server acked, from
	// loadgen traffic and the harness's own heal probes alike.
	ackedIDs := make(map[string]bool)

	// The fault family per round cycles a seeded permutation of all
	// three, so any run of >= 3 rounds provably composes disk faults,
	// kills, AND connection faults — only the order and the windows vary
	// by seed. Pure rng selection could leave a family uncovered.
	families := []int{0, 1, 2}
	for i := len(families) - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		families[i], families[j] = families[j], families[i]
	}

	for round := 0; round < cfg.Rounds; round++ {
		rr := RoundReport{Round: round}

		resCh := make(chan *loadgen.Result, 1)
		errCh := make(chan error, 1)
		go func() {
			res, err := loadgen.Run(loadgen.Config{
				Addr:        cfg.Socket,
				Conns:       cfg.Conns,
				Rate:        cfg.Rate,
				Ops:         cfg.Ops,
				StatusEvery: 7,
				IDPrefix:    fmt.Sprintf("t%d-r%d", cfg.Seed, round),
				Timeout:     10 * time.Second,
				Attempts:    40,
				RetryHinted: true,
				TrackAcked:  true,
			})
			if err != nil {
				errCh <- err
				return
			}
			resCh <- res
		}()

		// Let the traffic establish before the storm hits it.
		time.Sleep(60 * time.Millisecond)

		switch families[round%len(families)] {
		case 0: // disk-fault window: must heal in place, no restart
			errno := syscall.ENOSPC
			rr.Fault = "disk-enospc"
			if rng.IntN(2) == 1 {
				errno = syscall.EIO
				rr.Fault = "disk-eio"
			}
			rr.WindowMs = 80 + rng.IntN(160)
			rep.DiskFaults++
			epochBefore := mustEpoch(ctl, rep)
			logf("round %d: %s window %dms", round, rr.Fault, rr.WindowMs)
			h.faulty.ForceFail(errno)
			time.Sleep(time.Duration(rr.WindowMs) * time.Millisecond)
			h.faulty.Clear()
			if !waitHealthy(ctl, 15*time.Second) {
				rep.fail("round %d: journal never healed after the %s window cleared", round, rr.Fault)
				break
			}
			// The heal-without-restart proof: a durable ack on the SAME
			// incarnation, post-heal.
			probeID := fmt.Sprintf("heal-probe-%d-r%d", cfg.Seed, round)
			pr, err := ctl.Do(serve.Message{Op: "submit", ID: probeID,
				ReqID: "req-" + probeID, Statement: tortureStatement})
			if err != nil || !pr.OK {
				rep.fail("round %d: post-heal durable submit not acked: err=%v resp=%+v", round, err, pr)
				break
			}
			ackedIDs[probeID] = true
			if got := mustEpoch(ctl, rep); got != epochBefore {
				rep.fail("round %d: epoch moved %d -> %d across a heal — that was a restart, not a heal",
					round, epochBefore, got)
			}

		case 1: // process kill: journal replay must resurrect the acked set
			rr.Fault = "kill"
			rep.Kills++
			logf("round %d: kill -9", round)
			h.kill()
			// A kill can land mid-fault-window state; make sure the disk is
			// sane before the incarnation that must replay from it boots.
			h.faulty.Clear()
			if err := h.start(); err != nil {
				return nil, fmt.Errorf("torture: round %d restart: %w", round, err)
			}

		case 2: // connection faults: rogue peers, server must shrug
			rr.Fault = "conn"
			rep.ConnFaults++
			logf("round %d: rogue connections", round)
			injectConnFaults(cfg.Socket, rng)
			if hr, err := ctl.Do(serve.Message{Op: "health"}); err != nil || !hr.OK {
				rep.fail("round %d: health after rogue connections: err=%v resp=%+v", round, err, hr)
			}
		}

		var res *loadgen.Result
		select {
		case res = <-resCh:
		case err := <-errCh:
			return nil, fmt.Errorf("torture: round %d loadgen: %w", round, err)
		case <-time.After(2 * time.Minute):
			return nil, fmt.Errorf("torture: round %d loadgen wedged", round)
		}
		rr.Acked, rr.Degraded, rr.Refused, rr.Errors = res.Acked, res.Degraded, res.Refused, res.Errors
		rep.Degraded += res.Degraded
		for _, j := range res.AckedJobs {
			if ackedIDs[j.ID] {
				rep.fail("round %d: job %s acked twice", round, j.ID)
			}
			ackedIDs[j.ID] = true
		}
		rr.Epoch = mustEpoch(ctl, rep)
		rep.Rounds = append(rep.Rounds, rr)
		if len(rep.Epochs) == 0 || rr.Epoch != rep.Epochs[len(rep.Epochs)-1] {
			rep.Epochs = append(rep.Epochs, rr.Epoch)
		}
		logf("round %d done: %s — acked %d, degraded %d, refused %d, errors %d, epoch %d",
			round, rr.Fault, rr.Acked, rr.Degraded, rr.Refused, rr.Errors, rr.Epoch)
	}
	rep.Acked = len(ackedIDs)

	// Quiesce: faults cleared, latch lifted, then one final unclean kill
	// so the audit reads the journal exactly as a crash left it.
	h.faulty.Clear()
	if !waitHealthy(ctl, 15*time.Second) {
		rep.fail("final quiesce: server never reported healthy")
	}
	h.kill()
	h.srv = nil

	// Independent audit: replay the journal chain read-only — no
	// truncation, no epoch bump — and compare three ledgers.
	replay, err := serve.ReplayJournal(cfg.Dir)
	if err != nil {
		rep.fail("read-only journal replay: %v", err)
	} else {
		journalIDs := make(map[string]int, len(replay.Jobs))
		for _, j := range replay.Jobs {
			journalIDs[j.ID]++
		}
		for id, n := range journalIDs {
			if n > 1 {
				rep.DuplicateIDs = append(rep.DuplicateIDs, id)
			}
		}
		if len(rep.DuplicateIDs) > 0 {
			rep.fail("journal registry holds %d duplicate job ids", len(rep.DuplicateIDs))
		}
		for id := range ackedIDs {
			if journalIDs[id] == 0 {
				rep.AckedLost = append(rep.AckedLost, id)
			}
		}
		if n := len(rep.AckedLost); n > 0 {
			rep.fail("%d acked jobs missing from the journal (acked-lost)", n)
		}
		rep.JournalJobs = len(replay.Jobs)
		rep.JournalLive = len(replay.NonTerminal())
		rep.Heals = int(replay.Heals)
	}
	if rep.DiskFaults > 0 && rep.Heals == 0 {
		rep.fail("%d disk-fault windows but zero recovery barriers journaled", rep.DiskFaults)
	}

	// Final incarnation: the three-way recovered-count agreement.
	if err := h.start(); err != nil {
		return nil, fmt.Errorf("torture: final restart: %w", err)
	}
	fin, err := ctl.Do(serve.Message{Op: "resume"})
	if err != nil {
		return nil, fmt.Errorf("torture: final resume: %w", err)
	}
	rep.ResumeRecovered = fin.Recovered
	if last := rep.Epochs[len(rep.Epochs)-1]; fin.ServerEpoch <= last {
		rep.fail("final epoch %d did not advance past %d", fin.ServerEpoch, last)
	}
	rep.Epochs = append(rep.Epochs, fin.ServerEpoch)
	for i := 1; i < len(rep.Epochs); i++ {
		if rep.Epochs[i] <= rep.Epochs[i-1] {
			rep.fail("server epochs not monotonic: %v", rep.Epochs)
		}
	}
	if mr, err := ctl.Do(serve.Message{Op: "metrics"}); err != nil {
		rep.fail("metrics scrape: %v", err)
	} else {
		rep.ObsRecovered = scrapeCounter(mr.Report, "rotary_serve_recovered_jobs_total")
	}
	if rep.OK {
		if rep.ResumeRecovered != rep.JournalLive {
			rep.fail("resume recovered %d jobs, read-only replay says %d live", rep.ResumeRecovered, rep.JournalLive)
		}
		if rep.ObsRecovered != rep.ResumeRecovered {
			rep.fail("obs counter recovered %d, resume handshake says %d", rep.ObsRecovered, rep.ResumeRecovered)
		}
	}
	// Spot-check survivors: every acked job answers status by id.
	checked := 0
	for id := range ackedIDs {
		if checked >= 16 {
			break
		}
		checked++
		if st, err := ctl.Do(serve.Message{Op: "status", ID: id}); err != nil || !st.OK {
			rep.fail("acked job %s unanswerable after final restart: err=%v resp=%+v", id, err, st)
		}
	}

	logf("seed %d: %d acked, %d heals, %d kills, %d conn faults, epochs %v — ok=%v",
		cfg.Seed, rep.Acked, rep.Heals, rep.Kills, rep.ConnFaults, rep.Epochs, rep.OK)
	if !rep.OK && cfg.ArtifactDir != "" {
		dumpArtifacts(cfg, rep)
	}
	return rep, nil
}

// tortureStatement is the canonical completion-criteria statement every
// torture submit carries.
const tortureStatement = "q1 ACC MIN 60% WITHIN 900 SECONDS"

// mustEpoch reads the current server epoch through the control client;
// a failed read records an invariant failure and returns -1.
func mustEpoch(ctl *serve.Client, rep *Report) int {
	r, err := ctl.Do(serve.Message{Op: "resume"})
	if err != nil || !r.OK {
		rep.fail("resume for epoch read: err=%v resp=%+v", err, r)
		return -1
	}
	return r.ServerEpoch
}

// waitHealthy polls the health op until the server reports "healthy".
// Each probe also drives the server's heal prober (every handled batch
// attempts a heal when due), so polling is itself the recovery engine
// on an unpaced server.
func waitHealthy(ctl *serve.Client, within time.Duration) bool {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if r, err := ctl.Do(serve.Message{Op: "health"}); err == nil && r.Status == "healthy" {
			return true
		}
		time.Sleep(25 * time.Millisecond)
	}
	return false
}

// scrapeCounter pulls one un-labelled counter's integer value out of a
// Prometheus text exposition (-1 when absent).
func scrapeCounter(exposition, name string) int {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return -1
		}
		return int(v)
	}
	return -1
}

// dumpArtifacts writes the invariant report and copies the journal
// segment chain into the artifact directory for offline debugging.
func dumpArtifacts(cfg Config, rep *Report) {
	dir := filepath.Join(cfg.ArtifactDir, fmt.Sprintf("seed-%d", cfg.Seed))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	if b, err := json.MarshalIndent(rep, "", "  "); err == nil {
		os.WriteFile(filepath.Join(dir, "invariant-report.json"), append(b, '\n'), 0o644)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "serve.journal") {
			continue
		}
		if data, err := os.ReadFile(filepath.Join(cfg.Dir, e.Name())); err == nil {
			os.WriteFile(filepath.Join(dir, e.Name()), data, 0o644)
		}
	}
}
