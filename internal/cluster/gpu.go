package cluster

import (
	"fmt"
	"sort"
)

// GPU is a single accelerator device. The paper's DLT testbed has 4× RTX
// 2080 with 8 GB of graphics memory each; Algorithm 3 takes "Total GPU D,
// GPU memory {M_1, …, M_D}" and admits heterogeneous devices.
type GPU struct {
	ID    int
	MemMB float64
}

// GPUCluster models the Rotary-DLT resource substrate: whole devices that
// run one job at a time (the paper fits shrunk model variants on a single
// GPU, so there is no multi-GPU job in the evaluation).
type GPUCluster struct {
	devices []GPU
	busy    map[int]string // device ID -> job ID
	placed  map[string]int // job ID -> device ID
	down    map[int]bool   // device ID -> crashed, awaiting repair
}

// NewGPUCluster returns a cluster with the given devices.
func NewGPUCluster(devices []GPU) *GPUCluster {
	ds := make([]GPU, len(devices))
	copy(ds, devices)
	sort.Slice(ds, func(i, j int) bool { return ds[i].ID < ds[j].ID })
	for i := 1; i < len(ds); i++ {
		if ds[i].ID == ds[i-1].ID {
			panic(fmt.Sprintf("cluster: duplicate GPU ID %d", ds[i].ID))
		}
	}
	return &GPUCluster{
		devices: ds,
		busy:    make(map[int]string),
		placed:  make(map[string]int),
		down:    make(map[int]bool),
	}
}

// NewUniformGPUCluster returns n identical devices with memMB each,
// matching the paper's 4× 8 GB testbed when called as (4, 8192).
func NewUniformGPUCluster(n int, memMB float64) *GPUCluster {
	devices := make([]GPU, n)
	for i := range devices {
		devices[i] = GPU{ID: i, MemMB: memMB}
	}
	return NewGPUCluster(devices)
}

// Devices returns a copy of the device list in ID order.
func (c *GPUCluster) Devices() []GPU {
	out := make([]GPU, len(c.devices))
	copy(out, c.devices)
	return out
}

// Size reports the number of devices.
func (c *GPUCluster) Size() int { return len(c.devices) }

// FreeDevices returns the idle, healthy devices in ID order. Devices
// marked down (crashed, awaiting repair) are excluded until SetDown
// clears them.
func (c *GPUCluster) FreeDevices() []GPU {
	var out []GPU
	for _, d := range c.devices {
		if c.down[d.ID] {
			continue
		}
		if _, taken := c.busy[d.ID]; !taken {
			out = append(out, d)
		}
	}
	return out
}

// SetDown marks a device crashed (down=true) or repaired (down=false).
// A down device is never listed free and rejects assignments; any
// occupant must be released by the caller as part of its crash handling.
func (c *GPUCluster) SetDown(deviceID int, down bool) {
	if down {
		c.down[deviceID] = true
	} else {
		delete(c.down, deviceID)
	}
}

// IsDown reports whether the device is marked crashed.
func (c *GPUCluster) IsDown(deviceID int) bool { return c.down[deviceID] }

// Assign places jobID on the device. It fails if the device is unknown or
// busy, if the job is already placed, or if memMB exceeds the device
// memory — the check TME exists to make pass ("launched on a target GPU
// with sufficient memory").
func (c *GPUCluster) Assign(jobID string, deviceID int, memMB float64) error {
	var dev *GPU
	for i := range c.devices {
		if c.devices[i].ID == deviceID {
			dev = &c.devices[i]
			break
		}
	}
	if dev == nil {
		return fmt.Errorf("cluster: unknown GPU %d", deviceID)
	}
	if c.down[deviceID] {
		return fmt.Errorf("cluster: GPU %d is down", deviceID)
	}
	if holder, taken := c.busy[deviceID]; taken {
		return fmt.Errorf("cluster: GPU %d busy with job %s", deviceID, holder)
	}
	if _, placed := c.placed[jobID]; placed {
		return fmt.Errorf("cluster: job %s already placed", jobID)
	}
	if memMB > dev.MemMB {
		return fmt.Errorf("cluster: job %s needs %.0f MB but GPU %d has %.0f MB: %w",
			jobID, memMB, deviceID, dev.MemMB, ErrInsufficient)
	}
	c.busy[deviceID] = jobID
	c.placed[jobID] = deviceID
	return nil
}

// Release frees the device held by jobID, if any.
func (c *GPUCluster) Release(jobID string) {
	dev, ok := c.placed[jobID]
	if !ok {
		return
	}
	delete(c.placed, jobID)
	delete(c.busy, dev)
}

// DeviceOf reports the device jobID is placed on.
func (c *GPUCluster) DeviceOf(jobID string) (int, bool) {
	d, ok := c.placed[jobID]
	return d, ok
}

// Check verifies the placement ledger's invariants.
func (c *GPUCluster) Check() error {
	if len(c.busy) != len(c.placed) {
		return fmt.Errorf("cluster: busy/placed size mismatch %d vs %d", len(c.busy), len(c.placed))
	}
	for dev, job := range c.busy {
		if got, ok := c.placed[job]; !ok || got != dev {
			return fmt.Errorf("cluster: GPU %d claims job %s but job maps to %d (ok=%v)", dev, job, got, ok)
		}
	}
	return nil
}
