package cluster

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"rotary/internal/sim"
)

func TestCPUPoolAllocateReleaseConservation(t *testing.T) {
	p := NewCPUPool(8, 1000)
	if err := p.Allocate("a", 3, 400); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate("b", 5, 600); err != nil {
		t.Fatal(err)
	}
	if p.FreeThreads() != 0 || p.FreeMemMB() != 0 {
		t.Fatalf("free=%d/%v, want 0/0", p.FreeThreads(), p.FreeMemMB())
	}
	if err := p.Allocate("c", 1, 0); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("overallocation error = %v, want ErrInsufficient", err)
	}
	p.Release("a")
	if p.FreeThreads() != 3 || p.FreeMemMB() != 400 {
		t.Fatalf("free=%d/%v after release, want 3/400", p.FreeThreads(), p.FreeMemMB())
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUPoolGrow(t *testing.T) {
	p := NewCPUPool(4, 100)
	if err := p.Grow("ghost", 1); err == nil {
		t.Error("grow on unknown job succeeded")
	}
	if err := p.Allocate("a", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Grow("a", 2); err != nil {
		t.Fatal(err)
	}
	th, mem := p.Holding("a")
	if th != 3 || mem != 10 {
		t.Fatalf("holding %d/%v, want 3/10", th, mem)
	}
	if err := p.Grow("a", 5); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("grow past capacity = %v, want ErrInsufficient", err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUPoolRejectsDoubleAllocateAndBadArgs(t *testing.T) {
	p := NewCPUPool(4, 100)
	if err := p.Allocate("a", 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate("a", 1, 10); err == nil {
		t.Error("double allocate succeeded")
	}
	if err := p.Allocate("b", 0, 10); err == nil {
		t.Error("zero-thread allocate succeeded")
	}
	if err := p.Allocate("b", 1, -5); err == nil {
		t.Error("negative-memory allocate succeeded")
	}
	p.Release("nobody") // must be a no-op
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

// Property: any random sequence of allocate/grow/release operations
// preserves the ledger's conservation invariant.
func TestCPUPoolPropertyConservation(t *testing.T) {
	check := func(seed uint64, steps uint8) bool {
		r := sim.NewRand(seed)
		p := NewCPUPool(10, 500)
		ids := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < int(steps); i++ {
			id := ids[r.IntN(len(ids))]
			switch r.IntN(3) {
			case 0:
				_ = p.Allocate(id, 1+r.IntN(4), float64(r.IntN(200)))
			case 1:
				_ = p.Grow(id, 1+r.IntN(3))
			case 2:
				p.Release(id)
			}
			if err := p.Check(); err != nil {
				return false
			}
		}
		for _, id := range ids {
			p.Release(id)
		}
		return p.FreeThreads() == 10 && p.FreeMemMB() == 500 && p.Check() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGPUClusterAssignReleaseInvariants(t *testing.T) {
	c := NewUniformGPUCluster(2, 8192)
	if c.Size() != 2 || len(c.FreeDevices()) != 2 {
		t.Fatal("fresh cluster not fully free")
	}
	if err := c.Assign("j1", 0, 4000); err != nil {
		t.Fatal(err)
	}
	if err := c.Assign("j2", 0, 4000); err == nil {
		t.Error("double-booked device")
	}
	if err := c.Assign("j1", 1, 4000); err == nil {
		t.Error("job placed twice")
	}
	if err := c.Assign("j3", 1, 9000); !errors.Is(err, ErrInsufficient) {
		t.Errorf("oversized placement error = %v, want ErrInsufficient", err)
	}
	if err := c.Assign("j3", 7, 10); err == nil {
		t.Error("assigned to unknown device")
	}
	if dev, ok := c.DeviceOf("j1"); !ok || dev != 0 {
		t.Errorf("DeviceOf(j1) = %d,%v", dev, ok)
	}
	c.Release("j1")
	if _, ok := c.DeviceOf("j1"); ok {
		t.Error("job still placed after release")
	}
	if len(c.FreeDevices()) != 2 {
		t.Error("device not freed")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGPUClusterPropertyLedger(t *testing.T) {
	check := func(seed uint64, steps uint8) bool {
		r := sim.NewRand(seed)
		c := NewUniformGPUCluster(3, 1000)
		ids := []string{"a", "b", "c", "d"}
		for i := 0; i < int(steps); i++ {
			id := ids[r.IntN(len(ids))]
			if r.IntN(2) == 0 {
				_ = c.Assign(id, r.IntN(3), float64(r.IntN(1200)))
			} else {
				c.Release(id)
			}
			if err := c.Check(); err != nil {
				return false
			}
			if len(c.FreeDevices()) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGPUClusterDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate GPU IDs did not panic")
		}
	}()
	NewGPUCluster([]GPU{{ID: 1, MemMB: 1}, {ID: 1, MemMB: 2}})
}

func TestHeldJobsSorted(t *testing.T) {
	p := NewCPUPool(10, 1000)
	for _, id := range []string{"z", "m", "a"} {
		if err := p.Allocate(id, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	got := p.HeldJobs()
	want := []string{"a", "m", "z"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("HeldJobs() = %v, want %v", got, want)
	}
}

func TestGPUClusterDownDevices(t *testing.T) {
	c := NewUniformGPUCluster(3, 8192)
	c.SetDown(1, true)
	if !c.IsDown(1) || c.IsDown(0) {
		t.Fatalf("down state: 0=%v 1=%v", c.IsDown(0), c.IsDown(1))
	}
	free := c.FreeDevices()
	if len(free) != 2 {
		t.Fatalf("%d free devices with one down, want 2", len(free))
	}
	for _, d := range free {
		if d.ID == 1 {
			t.Fatal("down device listed free")
		}
	}
	if err := c.Assign("j1", 1, 100); err == nil {
		t.Fatal("assignment to a down device succeeded")
	}
	// Repair restores the device for placement.
	c.SetDown(1, false)
	if c.IsDown(1) {
		t.Fatal("device still down after repair")
	}
	if len(c.FreeDevices()) != 3 {
		t.Fatalf("%d free devices after repair, want 3", len(c.FreeDevices()))
	}
	if err := c.Assign("j1", 1, 100); err != nil {
		t.Fatalf("assignment after repair: %v", err)
	}
	// A crash while occupied: the executor releases the occupant as part
	// of its crash handling; the device stays unlistable until repaired.
	c.SetDown(1, true)
	c.Release("j1")
	if len(c.FreeDevices()) != 2 {
		t.Fatalf("%d free devices after crash release, want 2", len(c.FreeDevices()))
	}
}
