package serve

import (
	"bufio"
	"encoding/json"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// client is a line-oriented test client over the Unix socket.
type client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

func dial(t *testing.T, socket string) *client {
	t.Helper()
	conn, err := net.Dial("unix", socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, sc: bufio.NewScanner(conn), enc: json.NewEncoder(conn)}
}

func (c *client) call(t *testing.T, m Message) Response {
	t.Helper()
	if err := c.enc.Encode(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	if !c.sc.Scan() {
		t.Fatalf("no reply: %v", c.sc.Err())
	}
	var r Response
	if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil {
		t.Fatalf("bad reply %q: %v", c.sc.Text(), err)
	}
	return r
}

func newTestServer(t *testing.T, admit *admission.Controller) (*Server, string) {
	t.Helper()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Admission = admit
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	socket := filepath.Join(t.TempDir(), "rotary.sock")
	// Pace 0: virtual time advances only on submit/advance/drain, so the
	// test is deterministic regardless of wall-clock scheduling.
	srv, err := New(Config{Socket: socket, Pace: 0}, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, socket
}

func serveAsync(t *testing.T, srv *Server) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// Wait for the socket to appear.
	for {
		conn, err := net.Dial("unix", srv.cfg.Socket)
		if err == nil {
			conn.Close()
			return &wg
		}
	}
}

func TestSubmitStatusDrain(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	c := dial(t, socket)

	sub := c.call(t, Message{Op: "submit", ID: "job-a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !sub.OK {
		t.Fatalf("submit refused: %+v", sub)
	}
	st := c.call(t, Message{Op: "status", ID: "job-a"})
	if !st.OK || st.Status == "" {
		t.Fatalf("status: %+v", st)
	}
	// Advance far past the deadline: the job must be terminal.
	adv := c.call(t, Message{Op: "advance", Seconds: 2000})
	if !adv.OK || adv.VirtualNow < 2000 {
		t.Fatalf("advance: %+v", adv)
	}
	st = c.call(t, Message{Op: "status", ID: "job-a"})
	for _, bad := range []string{"waiting", "pending", "running"} {
		if st.Status == bad {
			t.Fatalf("job still %s after its deadline", bad)
		}
	}
	stats := c.call(t, Message{Op: "stats"})
	if !stats.OK || stats.Jobs != 1 || stats.Terminal != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if !strings.Contains(stats.Report, "overload report: serve") {
		t.Fatalf("stats report missing overload section:\n%s", stats.Report)
	}

	dr := c.call(t, Message{Op: "drain"})
	if !dr.OK || dr.Status != "drained" {
		t.Fatalf("drain: %+v", dr)
	}
	wg.Wait()
	// A second drain (the SIGTERM handler losing the race with a client
	// drain) must not hang.
	if r := srv.Drain(); !r.OK {
		t.Fatalf("second drain: %+v", r)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	cases := []struct {
		name string
		msg  Message
		want string
	}{
		{"no criteria", Message{Op: "submit", Statement: "q1"}, "no completion-criteria clause"},
		{"runtime criterion", Message{Op: "submit", Statement: "q1 FOR 10 MINUTES"}, "accuracy criterion"},
		{"epoch deadline", Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 5 EPOCHS"}, "wall-time"},
		{"unknown query", Message{Op: "submit", Statement: "q99 ACC MIN 60% WITHIN 900 SECONDS"}, "q99"},
		{"bad op", Message{Op: "frobnicate"}, "unknown op"},
		{"negative advance", Message{Op: "advance", Seconds: -1}, ">= 0"},
	}
	for _, tc := range cases {
		r := c.call(t, tc.msg)
		if r.OK || !strings.Contains(r.Error, tc.want) {
			t.Errorf("%s: got %+v, want error containing %q", tc.name, r, tc.want)
		}
	}

	ok := c.call(t, Message{Op: "submit", ID: "dup", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !ok.OK {
		t.Fatalf("submit: %+v", ok)
	}
	if r := c.call(t, Message{Op: "submit", ID: "dup", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.OK || !strings.Contains(r.Error, "duplicate") {
		t.Errorf("duplicate id accepted: %+v", r)
	}
	if r := c.call(t, Message{Op: "status", ID: "ghost"}); r.OK || !strings.Contains(r.Error, "unknown job") {
		t.Errorf("ghost status: %+v", r)
	}
}

func TestAdmissionRefusalOverSocket(t *testing.T) {
	ctrl := admission.NewController(admission.Config{
		MaxQueueDepth: 1,
		Policy:        admission.Reject,
	})
	srv, socket := newTestServer(t, ctrl)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	// With a 20-thread pool only one q1 runs at a time; the first fills
	// the active set, the second arrival finds it at the bound.
	first := c.call(t, Message{Op: "submit", ID: "a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !first.OK {
		t.Fatalf("first submit refused: %+v", first)
	}
	second := c.call(t, Message{Op: "submit", ID: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if second.OK {
		t.Fatalf("second submit admitted past the bound: %+v", second)
	}
	if second.Status != "rejected" {
		t.Fatalf("refused submit status %q, want rejected", second.Status)
	}
	st := ctrl.Stats()
	if st.Submitted != 2 || st.Rejected != 1 {
		t.Fatalf("controller stats %+v", st)
	}
}

func TestDrainBySignalPath(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	c := dial(t, socket)
	if r := c.call(t, Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	// The out-of-band Drain (what the SIGTERM handler calls) must finish
	// the in-flight job and report it terminal.
	r := srv.Drain()
	if !r.OK || r.Status != "drained" {
		t.Fatalf("drain: %+v", r)
	}
	if r.Terminal != r.Jobs || r.Jobs != 1 {
		t.Fatalf("drain left work: %+v", r)
	}
	wg.Wait()
	// Post-drain requests get a clean refusal or a closed connection —
	// never a hang.
	if err := c.enc.Encode(Message{Op: "stats"}); err == nil && c.sc.Scan() {
		var resp Response
		if jerr := json.Unmarshal(c.sc.Bytes(), &resp); jerr == nil && resp.OK {
			t.Fatalf("post-drain request served: %+v", resp)
		}
	}
}
