package core

// RecoveryStats counts an executor's failure-recovery activity under
// fault injection. All times are virtual seconds.
type RecoveryStats struct {
	// Crashes counts worker/device crashes that interrupted a running
	// epoch.
	Crashes int
	// Rollbacks counts recoveries that replayed the job's last valid
	// checkpoint.
	Rollbacks int
	// ScratchRestarts counts recoveries where no usable checkpoint
	// survived (missing, corrupt, or persistently failing I/O) and the job
	// restarted from its pristine state.
	ScratchRestarts int
	// WastedWorkSecs is the virtual processing time lost to interrupted
	// epochs.
	WastedWorkSecs float64
	// RecoveryLatencySecs accumulates, over every crash, the virtual time
	// from the crash to the job's next completed epoch (or its terminal
	// event if it never ran again).
	RecoveryLatencySecs float64
	// Recovered counts crashes whose job went on to complete another
	// epoch.
	Recovered int
	// Reattached counts journal-recovered jobs re-registered with the
	// executor after a daemon restart (each reattaches to its durable
	// checkpoint at its first grant, or scratch-restarts when none
	// survived).
	Reattached int
}

// MeanRecoveryLatencySecs is the average crash-to-next-completed-epoch
// latency (0 with no crashes).
func (r RecoveryStats) MeanRecoveryLatencySecs() float64 {
	if r.Crashes == 0 {
		return 0
	}
	return r.RecoveryLatencySecs / float64(r.Crashes)
}

// Add accumulates another executor's counters (the unified system sums
// its AQP and DLT sides).
func (r RecoveryStats) Add(o RecoveryStats) RecoveryStats {
	return RecoveryStats{
		Crashes:             r.Crashes + o.Crashes,
		Rollbacks:           r.Rollbacks + o.Rollbacks,
		ScratchRestarts:     r.ScratchRestarts + o.ScratchRestarts,
		WastedWorkSecs:      r.WastedWorkSecs + o.WastedWorkSecs,
		RecoveryLatencySecs: r.RecoveryLatencySecs + o.RecoveryLatencySecs,
		Recovered:           r.Recovered + o.Recovered,
		Reattached:          r.Reattached + o.Reattached,
	}
}
