package aqp

import (
	"encoding/json"
	"fmt"
	"math"

	"rotary/internal/stream"
)

// Speedup models the sublinear scaling of a query over hardware threads.
// Batch cost at t threads is the single-thread cost divided by Speedup(t);
// the exponent reflects the diminishing parallel efficiency the paper's
// testbed exhibits (shared scans, aggregation merge).
func Speedup(threads int) float64 {
	if threads <= 1 {
		return 1
	}
	return math.Pow(float64(threads), 0.85)
}

// CostModel charges virtual seconds for batch processing. Heavier TPC-H
// queries (more joins, more per-row state) carry larger SecsPerRow, which
// is what makes the light/medium/heavy classes of Table I differ in
// runtime as well as memory.
type CostModel struct {
	// SecsPerRow is the single-thread virtual processing cost per fact row.
	SecsPerRow float64
	// FixedPerBatch is a per-batch overhead (scheduling, result merge).
	FixedPerBatch float64
}

// BatchCost reports the virtual seconds to process rows fact rows with the
// given thread allocation.
func (c CostModel) BatchCost(rows, threads int) float64 {
	if rows <= 0 {
		return 0
	}
	return (float64(rows)*c.SecsPerRow + c.FixedPerBatch) / Speedup(threads)
}

// Processor is the per-query streaming program: a fold over fact-row
// batches into a GroupTable, plus optional hooks to persist auxiliary
// per-key state (the Q17/Q18/Q21-style maps) across checkpoints.
//
// A stateless processor (no SaveAux/LoadAux, Sequential unset) runs on
// the parallel data path: Process is then invoked concurrently from
// multiple goroutines, each call with a private GroupTable over a
// disjoint run of rows. Such a Process must be re-entrant — it may read
// shared immutable structures (dimension indexes) but must write nothing
// outside the GroupTable it was handed. Processors with auxiliary state
// are inherently order-sensitive and stay on the single-goroutine
// interleaved path automatically.
type Processor[T any] struct {
	// Process folds a batch into the running aggregates.
	Process func(rows []T, gt *GroupTable)
	// SaveAux/LoadAux serialize auxiliary state. Nil means stateless.
	SaveAux func() (json.RawMessage, error)
	LoadAux func(json.RawMessage) error
	// AuxBytes reports the auxiliary state's current footprint. Nil means
	// zero.
	AuxBytes func() int64
	// Sequential forces the single-goroutine interleaved path even for a
	// processor without auxiliary state (e.g. a Process closure that is
	// not re-entrant).
	Sequential bool
}

// parallelizable reports whether the processor may run on the
// partitioned data path.
func (p Processor[T]) parallelizable() bool {
	return p.SaveAux == nil && p.LoadAux == nil && !p.Sequential
}

// OnlineQuery is the engine's view of one progressive query, independent
// of its fact-row type. Rotary-AQP jobs wrap this interface.
type OnlineQuery interface {
	// Name is the query identifier (e.g. "q5").
	Name() string
	// ProcessBatch pulls up to batchRows fact rows, folds them into the
	// running aggregates, and returns the rows consumed plus the virtual-
	// second cost under the given thread allocation. rows == 0 means the
	// stream is exhausted.
	ProcessBatch(batchRows, threads int) (rows int, cost float64)
	// Exhausted reports whether the whole dataset has been processed.
	Exhausted() bool
	// Snapshot returns the current intermediate aggregates.
	Snapshot() Snapshot
	// Accuracy returns the paper's αc/αf accuracy against the final
	// answer, or 0 if no ground truth is attached.
	Accuracy() float64
	// DataProgress reports the fraction of the dataset consumed.
	DataProgress() float64
	// RowsProcessed reports the total fact rows consumed.
	RowsProcessed() int64
	// StateMemMB reports the current footprint of the running state
	// (aggregates + auxiliary maps) in MB.
	StateMemMB() float64
	// ConfidenceInterval reports the §III-B optional error bound of one
	// aggregate cell at confidence z given the current progressive sample.
	ConfidenceInterval(group string, col int, z float64) (lo, hi float64, ok bool)
	// Checkpoint serializes the complete job state (stream position,
	// aggregates, auxiliary state).
	Checkpoint() ([]byte, error)
	// Restore replaces the job state with a checkpoint taken from an
	// identically-constructed query.
	Restore([]byte) error
}

// Running is the concrete OnlineQuery over fact-row type T.
//
// Stateless queries hold one partial GroupTable per stream partition and
// fold each partition's rows independently (the parallel data path); the
// aggregate view merges partials in partition-index order, so snapshots
// are bit-identical at every worker width and epoch sizing. Queries with
// auxiliary state keep the single interleaved GroupTable.
type Running[T any] struct {
	name     string
	consumer *stream.Consumer[T]
	specs    []AggSpec
	gt       *GroupTable   // interleaved path state; nil on the parallel path
	partials []*GroupTable // parallel path state, one per stream partition
	merged   *GroupTable   // memoized merge of partials, dropped each epoch
	proc     Processor[T]
	cost     CostModel
	final    *Snapshot
	rows     int64
	maxWidth int // physical fan-out cap; 0 = granted threads pass through
}

// NewRunning assembles an online query from its parts. The consumer must
// be exclusive to this query.
func NewRunning[T any](name string, consumer *stream.Consumer[T], specs []AggSpec, proc Processor[T], cost CostModel) *Running[T] {
	if proc.Process == nil {
		panic("aqp: Processor.Process must be set")
	}
	r := &Running[T]{
		name:     name,
		consumer: consumer,
		specs:    append([]AggSpec(nil), specs...),
		proc:     proc,
		cost:     cost,
	}
	if proc.parallelizable() {
		r.partials = make([]*GroupTable, consumer.Partitions())
		for p := range r.partials {
			r.partials[p] = NewGroupTable(specs)
		}
	} else {
		r.gt = NewGroupTable(specs)
	}
	return r
}

// table returns the query's aggregate view: the interleaved table on the
// sequential path, or the partials merged in partition-index order on the
// parallel path (memoized until the next batch).
func (r *Running[T]) table() *GroupTable {
	if r.partials == nil {
		return r.gt
	}
	if r.merged == nil {
		m := NewGroupTable(r.specs)
		for _, p := range r.partials {
			m.Merge(p)
		}
		r.merged = m
	}
	return r.merged
}

// SetFinal attaches the ground-truth final answer used by Accuracy.
func (r *Running[T]) SetFinal(final Snapshot) { r.final = &final }

// SetMaxDataWidth caps the number of goroutines an epoch's parallel data
// path may fan out to, independent of the granted (virtual) thread count;
// the executor applies its DataParallelism config through this. Zero
// removes the cap. The cap changes scheduling only, never results: the
// partitioned accumulation is bit-deterministic at every width.
func (r *Running[T]) SetMaxDataWidth(n int) {
	if n < 0 {
		n = 0
	}
	r.maxWidth = n
}

// Name implements OnlineQuery.
func (r *Running[T]) Name() string { return r.name }

// ProcessBatch implements OnlineQuery. On the parallel data path the
// thread allocation is real: up to that many goroutines fold the epoch's
// per-partition row runs into private partial tables concurrently.
func (r *Running[T]) ProcessBatch(batchRows, threads int) (int, float64) {
	if r.partials == nil {
		batch, ok := r.consumer.NextBatch(batchRows)
		if !ok {
			return 0, 0
		}
		r.proc.Process(batch, r.gt)
		r.rows += int64(len(batch))
		return len(batch), r.cost.BatchCost(len(batch), threads)
	}
	batches, ok := r.consumer.NextBatchPartitioned(batchRows)
	if !ok {
		return 0, 0
	}
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	width := threads
	if r.maxWidth > 0 && width > r.maxWidth {
		width = r.maxWidth
	}
	runPartitions(width, batches, r.partials, r.proc.Process)
	r.merged = nil
	r.rows += int64(n)
	return n, r.cost.BatchCost(n, threads)
}

// Exhausted implements OnlineQuery.
func (r *Running[T]) Exhausted() bool { return r.consumer.Remaining() == 0 }

// Snapshot implements OnlineQuery.
func (r *Running[T]) Snapshot() Snapshot { return r.table().Snapshot() }

// Accuracy implements OnlineQuery.
func (r *Running[T]) Accuracy() float64 {
	if r.final == nil {
		return 0
	}
	return Accuracy(r.table().Snapshot(), *r.final)
}

// DataProgress implements OnlineQuery.
func (r *Running[T]) DataProgress() float64 { return r.consumer.Progress() }

// RowsProcessed implements OnlineQuery.
func (r *Running[T]) RowsProcessed() int64 { return r.rows }

// ConfidenceInterval implements OnlineQuery.
func (r *Running[T]) ConfidenceInterval(group string, col int, z float64) (lo, hi float64, ok bool) {
	return r.table().ConfidenceInterval(group, col, z, r.consumer.Progress())
}

// StateMemMB implements OnlineQuery.
func (r *Running[T]) StateMemMB() float64 {
	var b int64
	if r.partials == nil {
		b = r.gt.StateBytes()
	} else {
		for _, p := range r.partials {
			b += p.StateBytes()
		}
	}
	if r.proc.AuxBytes != nil {
		b += r.proc.AuxBytes()
	}
	return float64(b) / (1 << 20)
}

// checkpoint is the serialized form of a Running query. Sequential-path
// queries persist the single interleaved table; parallel-path queries
// persist one partial table per stream partition, so a restore resumes
// with the exact per-partition accumulators (and therefore the exact
// bits) the checkpointed query held.
type checkpoint struct {
	Name     string               `json:"name"`
	Consumer stream.ConsumerState `json:"consumer"`
	Table    json.RawMessage      `json:"table,omitempty"`
	Partials []json.RawMessage    `json:"partials,omitempty"`
	Aux      json.RawMessage      `json:"aux,omitempty"`
	Rows     int64                `json:"rows"`
}

// Checkpoint implements OnlineQuery.
func (r *Running[T]) Checkpoint() ([]byte, error) {
	cp := checkpoint{Name: r.name, Consumer: r.consumer.Offsets(), Rows: r.rows}
	if r.partials == nil {
		tbl, err := json.Marshal(r.gt)
		if err != nil {
			return nil, fmt.Errorf("aqp: checkpoint %s: %w", r.name, err)
		}
		cp.Table = tbl
	} else {
		cp.Partials = make([]json.RawMessage, len(r.partials))
		for p, gt := range r.partials {
			tbl, err := json.Marshal(gt)
			if err != nil {
				return nil, fmt.Errorf("aqp: checkpoint %s partial %d: %w", r.name, p, err)
			}
			cp.Partials[p] = tbl
		}
	}
	if r.proc.SaveAux != nil {
		aux, err := r.proc.SaveAux()
		if err != nil {
			return nil, fmt.Errorf("aqp: checkpoint %s aux: %w", r.name, err)
		}
		cp.Aux = aux
	}
	return json.Marshal(cp)
}

// Restore implements OnlineQuery.
func (r *Running[T]) Restore(data []byte) error {
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("aqp: restore: %w", err)
	}
	if cp.Name != r.name {
		return fmt.Errorf("aqp: restore: checkpoint is for %q, query is %q", cp.Name, r.name)
	}
	if err := r.consumer.Seek(cp.Consumer); err != nil {
		return fmt.Errorf("aqp: restore %s: %w", r.name, err)
	}
	if r.partials == nil {
		if cp.Table == nil {
			return fmt.Errorf("aqp: restore %s: checkpoint lacks the sequential-path table", r.name)
		}
		gt := &GroupTable{}
		if err := json.Unmarshal(cp.Table, gt); err != nil {
			return fmt.Errorf("aqp: restore %s table: %w", r.name, err)
		}
		r.gt = gt
	} else {
		if len(cp.Partials) != len(r.partials) {
			return fmt.Errorf("aqp: restore %s: %d partial tables for %d partitions", r.name, len(cp.Partials), len(r.partials))
		}
		partials := make([]*GroupTable, len(cp.Partials))
		for p, raw := range cp.Partials {
			gt := &GroupTable{}
			if err := json.Unmarshal(raw, gt); err != nil {
				return fmt.Errorf("aqp: restore %s partial %d: %w", r.name, p, err)
			}
			partials[p] = gt
		}
		r.partials = partials
		r.merged = nil
	}
	if cp.Aux != nil && r.proc.LoadAux != nil {
		if err := r.proc.LoadAux(cp.Aux); err != nil {
			return fmt.Errorf("aqp: restore %s aux: %w", r.name, err)
		}
	}
	r.rows = cp.Rows
	return nil
}
