package core

import (
	"errors"
	"sort"

	"rotary/internal/estimate"
	"rotary/internal/sim"
)

// This file implements §VI's "Unified Resource Arbitration Framework"
// discussion: "it is more interesting to have a unified resource
// arbitration system on a cluster to handle AQP and DLT jobs together.
// Such a system can serve more users and enormously improve resource
// utilization."
//
// The unified executor runs both prototype systems on ONE virtual clock,
// over one historical repository, under one global fairness threshold T:
// as long as any active job — AQP or DLT — is below T attainment
// progress, both sides arbitrate fairness-style (lowest progress first);
// once every job clears T (or is considered converged), both sides switch
// to their efficiency behaviour. This is Algorithm 3's threshold phase
// lifted from one workload type to the whole cluster.

// UnifiedExecConfig sizes the combined cluster.
type UnifiedExecConfig struct {
	AQP AQPExecConfig
	DLT DLTExecConfig
	// Threshold is the cluster-wide T of the lifted Algorithm 3.
	Threshold float64
}

// UnifiedExecutor arbitrates a mixed AQP + DLT workload.
type UnifiedExecutor struct {
	eng  *sim.Engine
	aqp  *AQPExecutor
	dlt  *DLTExecutor
	repo *estimate.Repository
	tee  *estimate.TEE

	state *unifiedState
}

// unifiedState is the shared global progress view both side-policies
// consult.
type unifiedState struct {
	threshold float64
	aqpJobs   []*AQPJob
	dltJobs   []*DLTJob
	tee       *estimate.TEE
}

// allMeetThreshold reports whether every active (arrived, non-terminal)
// job in the cluster has attainment progress ≥ T; converged jobs count as
// meeting it.
func (u *unifiedState) allMeetThreshold() bool {
	for _, j := range u.aqpJobs {
		if !j.arrived || j.Status().Terminal() {
			continue
		}
		if j.AttainmentProgress() < u.threshold {
			return false
		}
	}
	for _, j := range u.dltJobs {
		if !j.arrived || j.Status().Terminal() {
			continue
		}
		if j.ConvergedAtEpoch() > 0 {
			continue
		}
		if j.AttainmentProgress(u.tee) < u.threshold {
			return false
		}
	}
	return true
}

// minProgress reports the cluster-wide minimum attainment progress of the
// active jobs (1 when none are active) — the unified fairness metric.
func (u *unifiedState) minProgress() float64 {
	minP := 1.0
	seen := false
	for _, j := range u.aqpJobs {
		if !j.arrived || j.Status().Terminal() {
			continue
		}
		seen = true
		if p := j.AttainmentProgress(); p < minP {
			minP = p
		}
	}
	for _, j := range u.dltJobs {
		if !j.arrived || j.Status().Terminal() {
			continue
		}
		seen = true
		if p := j.AttainmentProgress(u.tee); p < minP {
			minP = p
		}
	}
	if !seen {
		return 1
	}
	return minP
}

// unifiedAQPSched wraps Algorithm 2 with the cluster-wide fairness phase:
// below the global threshold, pending jobs are served lowest-progress
// first with one thread each; above it, the inner Rotary-AQP policy runs
// unchanged.
type unifiedAQPSched struct {
	inner *RotaryAQP
	state *unifiedState
}

// Name implements AQPScheduler.
func (s *unifiedAQPSched) Name() string { return "rotary-unified-aqp" }

// Assign implements AQPScheduler.
func (s *unifiedAQPSched) Assign(ctx *AQPContext) []AQPGrant {
	if s.state.allMeetThreshold() {
		return s.inner.Assign(ctx)
	}
	// Fairness phase: lowest attainment progress first (trial jobs first
	// so the estimators get data), one thread each within memory.
	ranked := append([]*AQPJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(a, b int) bool {
		ja, jb := ranked[a], ranked[b]
		ta, tb := ja.Epochs() == 0, jb.Epochs() == 0
		if ta != tb {
			return ta
		}
		return ja.AttainmentProgress() < jb.AttainmentProgress()
	})
	free := ctx.FreeThreads
	mem := ctx.FreeMemMB
	var grants []AQPGrant
	for _, j := range ranked {
		if free == 0 {
			break
		}
		r := j.EstMemMB()
		if r > mem {
			continue
		}
		grants = append(grants, AQPGrant{Job: j, Threads: 1, ReserveMemMB: r})
		free--
		mem -= r
	}
	// Remaining threads boost the laggards first, so the fairness phase
	// uses the whole pool.
	for i := range grants {
		for grants[i].Threads < s.inner.MaxThreadsPerJob && free > 0 {
			grants[i].Threads++
			free--
		}
	}
	return grants
}

// unifiedDLTSched wraps Algorithm 3, replacing its per-workload
// threshold check with the cluster-wide one.
type unifiedDLTSched struct {
	inner *RotaryDLT
	state *unifiedState
}

// Name implements DLTScheduler.
func (s *unifiedDLTSched) Name() string { return "rotary-unified-dlt" }

// Place implements DLTScheduler.
func (s *unifiedDLTSched) Place(ctx *DLTContext) []DLTPlacement {
	// Steer the inner policy's phase from the global view: threshold 0
	// forces the efficiency branch, threshold 1 the fairness branch.
	if s.state.allMeetThreshold() {
		s.inner.Threshold = 0
	} else {
		s.inner.Threshold = 1
	}
	return s.inner.Place(ctx)
}

// NewUnifiedExecutor builds the §VI unified system: one clock, one
// repository, one global threshold across both resource substrates.
func NewUnifiedExecutor(cfg UnifiedExecConfig, repo *estimate.Repository) *UnifiedExecutor {
	if repo == nil {
		repo = estimate.NewRepository()
	}
	eng := sim.New()
	tee := estimate.NewTEE(repo, 3)
	tme := estimate.NewTME(repo, 3)
	state := &unifiedState{threshold: cfg.Threshold, tee: tee}

	aqpSched := &unifiedAQPSched{
		inner: NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3)),
		state: state,
	}
	dltSched := &unifiedDLTSched{
		inner: NewRotaryDLT(cfg.Threshold, tee, tme),
		state: state,
	}

	u := &UnifiedExecutor{
		eng:   eng,
		aqp:   NewAQPExecutorOn(eng, cfg.AQP, aqpSched, repo),
		dlt:   NewDLTExecutorOn(eng, cfg.DLT, dltSched, repo),
		repo:  repo,
		tee:   tee,
		state: state,
	}
	done := func() {
		if u.aqp.terminalCount == len(u.aqp.jobs) && u.dlt.terminalCount == len(u.dlt.jobs) {
			eng.Stop()
		}
	}
	u.aqp.onDone = done
	u.dlt.onDone = done
	return u
}

// Engine exposes the shared virtual clock.
func (u *UnifiedExecutor) Engine() *sim.Engine { return u.eng }

// SubmitAQP schedules an AQP job's arrival.
func (u *UnifiedExecutor) SubmitAQP(j *AQPJob, at sim.Time) {
	u.state.aqpJobs = append(u.state.aqpJobs, j)
	u.aqp.Submit(j, at)
}

// SubmitDLT schedules a DLT job's arrival.
func (u *UnifiedExecutor) SubmitDLT(j *DLTJob, at sim.Time) {
	u.state.dltJobs = append(u.state.dltJobs, j)
	u.dlt.Submit(j, at)
}

// AQPJobs and DLTJobs return the submitted jobs.
func (u *UnifiedExecutor) AQPJobs() []*AQPJob { return u.aqp.Jobs() }

// DLTJobs returns the submitted DLT jobs.
func (u *UnifiedExecutor) DLTJobs() []*DLTJob { return u.dlt.Jobs() }

// MinProgress reports the cluster-wide minimum attainment progress.
func (u *UnifiedExecutor) MinProgress() float64 { return u.state.minProgress() }

// Recovery reports the cluster-wide fault-recovery counters (AQP + DLT).
func (u *UnifiedExecutor) Recovery() RecoveryStats {
	return u.aqp.Recovery().Add(u.dlt.Recovery())
}

// Overload reports the cluster-wide overload-protection counters
// (AQP + DLT): watchdog preemptions, admission effects, forced grants,
// and the deeper of the two wait-queue high-water marks.
func (u *UnifiedExecutor) Overload() OverloadStats {
	return u.aqp.Overload().Add(u.dlt.Overload())
}

// Run drives the mixed workload to completion.
func (u *UnifiedExecutor) Run() error {
	if u.aqp.cfg.Faults.Enabled() && u.aqp.cfg.Store == nil {
		return errors.New("core: AQP fault injection requires a CheckpointStore")
	}
	if u.dlt.cfg.Faults.Enabled() && u.dlt.cfg.Store == nil {
		return errors.New("core: DLT fault injection requires a CheckpointStore")
	}
	if u.aqp.cfg.WatchdogSlack > 0 && u.aqp.cfg.Store == nil {
		return errors.New("core: AQP epoch watchdog requires a CheckpointStore")
	}
	if u.dlt.cfg.WatchdogSlack > 0 && u.dlt.cfg.Store == nil {
		return errors.New("core: DLT epoch watchdog requires a CheckpointStore")
	}
	u.eng.Run()
	var errs []error
	if u.aqp.storeErr != nil {
		errs = append(errs, u.aqp.storeErr)
	}
	if u.dlt.storeErr != nil {
		errs = append(errs, u.dlt.storeErr)
	}
	if n := len(u.aqp.jobs) - u.aqp.terminalCount; n > 0 {
		errs = append(errs, errors.New("core: unified run left AQP jobs unterminated"))
	}
	if n := len(u.dlt.jobs) - u.dlt.terminalCount; n > 0 {
		errs = append(errs, errors.New("core: unified run left DLT jobs unterminated"))
	}
	return errors.Join(errs...)
}
