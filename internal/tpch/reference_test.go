package tpch

// Reference tests: a handful of queries recomputed by brute force directly
// over the generated tables, compared against the streaming engine's
// ground truth. These pin the engine's join/filter/aggregate semantics
// independently of the online-aggregation machinery.

import (
	"math"
	"strings"
	"testing"
)

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-6*scale
}

func TestQ1AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q1")
	if err != nil {
		t.Fatal(err)
	}

	cutoff := MakeDate(1998, 9, 2)
	type acc struct {
		qty, price, disc, charge, discSum float64
		n                                 int64
	}
	ref := map[string]*acc{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate > cutoff {
			continue
		}
		key := string([]byte{l.ReturnFlag, '|', l.LineStatus})
		a, ok := ref[key]
		if !ok {
			a = &acc{}
			ref[key] = a
		}
		dp := l.ExtendedPrice * (1 - l.Discount)
		a.qty += l.Quantity
		a.price += l.ExtendedPrice
		a.disc += dp
		a.charge += dp * (1 + l.Tax)
		a.discSum += l.Discount
		a.n++
	}
	if len(truth.Groups) != len(ref) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(ref))
	}
	for key, a := range ref {
		vals, ok := truth.Groups[key]
		if !ok {
			t.Fatalf("missing group %q", key)
		}
		wants := []float64{a.qty, a.price, a.disc, a.charge,
			a.qty / float64(a.n), a.price / float64(a.n), a.discSum / float64(a.n), float64(a.n)}
		for i, w := range wants {
			if !approxEq(vals[i], w) {
				t.Errorf("group %q col %d = %v, want %v", key, i, vals[i], w)
			}
		}
	}
}

func TestQ6AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q6")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	var revenue float64
	var n int64
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate < lo || l.ShipDate >= hi || l.Discount < 0.05 || l.Discount > 0.07 || l.Quantity >= 24 {
			continue
		}
		revenue += l.ExtendedPrice * l.Discount
		n++
	}
	vals := truth.Groups["all"]
	if !approxEq(vals[0], revenue) || vals[1] != float64(n) {
		t.Fatalf("q6 = %v, want [%v %v]", vals, revenue, n)
	}
}

func TestQ5AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q5")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	ref := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		o := ds.Orders[l.OrderKey-1]
		if o.OrderDate < lo || o.OrderDate >= hi {
			continue
		}
		s := ds.Suppliers[l.SuppKey-1]
		nation := ds.Nations[s.NationKey]
		if ds.Regions[nation.RegionKey].Name != "ASIA" {
			continue
		}
		if ds.Customers[o.CustKey-1].NationKey != s.NationKey {
			continue
		}
		ref[nation.Name] += l.ExtendedPrice * (1 - l.Discount)
	}
	if len(truth.Groups) != len(ref) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(ref))
	}
	for nation, rev := range ref {
		vals, ok := truth.Groups[nation]
		if !ok || !approxEq(vals[0], rev) {
			t.Errorf("q5[%s] = %v, want %v", nation, vals, rev)
		}
	}
}

func TestQ12AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q12")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	type hl struct{ high, low float64 }
	ref := map[string]*hl{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipMode != "MAIL" && l.ShipMode != "SHIP" {
			continue
		}
		if l.CommitDate >= l.ReceiptDate || l.ShipDate >= l.CommitDate ||
			l.ReceiptDate < lo || l.ReceiptDate >= hi {
			continue
		}
		a, ok := ref[l.ShipMode]
		if !ok {
			a = &hl{}
			ref[l.ShipMode] = a
		}
		p := ds.Orders[l.OrderKey-1].OrderPriority
		if p == "1-URGENT" || p == "2-HIGH" {
			a.high++
		} else {
			a.low++
		}
	}
	for mode, a := range ref {
		vals, ok := truth.Groups[mode]
		if !ok || vals[0] != a.high || vals[1] != a.low {
			t.Errorf("q12[%s] = %v, want [%v %v]", mode, vals, a.high, a.low)
		}
	}
}

func TestQ22AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q22")
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	hasOrders := map[int32]bool{}
	for i := range ds.Orders {
		hasOrders[ds.Orders[i].CustKey] = true
	}
	var balSum float64
	var balN int
	for i := range ds.Customers {
		if b := ds.Customers[i].AcctBal; b > 0 {
			balSum += b
			balN++
		}
	}
	threshold := balSum / float64(balN)
	refCount := map[string]float64{}
	refBal := map[string]float64{}
	for i := range ds.Customers {
		c := &ds.Customers[i]
		code := c.Phone[:2]
		if !codes[code] || c.AcctBal <= threshold || hasOrders[c.CustKey] {
			continue
		}
		refCount[code]++
		refBal[code] += c.AcctBal
	}
	if len(refCount) == 0 {
		t.Fatal("reference found no qualifying customers; generator broken")
	}
	if len(truth.Groups) != len(refCount) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(refCount))
	}
	for code, n := range refCount {
		vals, ok := truth.Groups[code]
		if !ok || vals[0] != n || !approxEq(vals[1], refBal[code]) {
			t.Errorf("q22[%s] = %v, want [%v %v]", code, vals, n, refBal[code])
		}
	}
}

func TestQ18AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q18")
	if err != nil {
		t.Fatal(err)
	}
	qty := map[int32]float64{}
	for i := range ds.Lineitems {
		qty[ds.Lineitems[i].OrderKey] += ds.Lineitems[i].Quantity
	}
	var count, totalPrice float64
	for ok, q := range qty {
		if q > 300 {
			count++
			totalPrice += ds.Orders[ok-1].TotalPrice
		}
	}
	vals := truth.Groups["all"]
	if vals[0] != count || !approxEq(vals[1], totalPrice) {
		t.Fatalf("q18 = %v, want [%v %v]", vals, count, totalPrice)
	}
}

func TestQ9ProfitSignAndNations(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q9")
	if err != nil {
		t.Fatal(err)
	}
	for g := range truth.Groups {
		parts := strings.Split(g, "|")
		if len(parts) != 2 {
			t.Fatalf("q9 group key %q not nation|year", g)
		}
		year := parts[1]
		if year < "1992" || year > "1998" {
			t.Errorf("q9 year %q outside the order calendar", year)
		}
	}
}

func TestQ2AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q2")
	if err != nil {
		t.Fatal(err)
	}
	var minCost float64 = 1e18
	var count, balSum float64
	for i := range ds.PartSupps {
		ps := &ds.PartSupps[i]
		p := ds.Parts[ps.PartKey-1]
		if p.Size != 15 || !strings.HasSuffix(p.Type, "BRASS") {
			continue
		}
		s := ds.Suppliers[ps.SuppKey-1]
		if ds.Regions[ds.Nations[s.NationKey].RegionKey].Name != "EUROPE" {
			continue
		}
		if ps.SupplyCost < minCost {
			minCost = ps.SupplyCost
		}
		count++
		balSum += s.AcctBal
	}
	vals := truth.Groups["europe-brass"]
	if !approxEq(vals[0], minCost) || vals[1] != count || !approxEq(vals[2], balSum/count) {
		t.Fatalf("q2 = %v, want [%v %v %v]", vals, minCost, count, balSum/count)
	}
}

func TestQ4AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q4")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1993, 7, 1), MakeDate(1993, 10, 1)
	qualifying := map[int32]bool{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.CommitDate >= l.ReceiptDate {
			continue
		}
		o := ds.Orders[l.OrderKey-1]
		if o.OrderDate < lo || o.OrderDate >= hi {
			continue
		}
		qualifying[l.OrderKey] = true
	}
	ref := map[string]float64{}
	for ok := range qualifying {
		ref[ds.Orders[ok-1].OrderPriority]++
	}
	if len(truth.Groups) != len(ref) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(ref))
	}
	for pri, n := range ref {
		vals, found := truth.Groups[pri]
		if !found || vals[0] != n {
			t.Errorf("q4[%s] = %v, want %v", pri, vals, n)
		}
	}
}

func TestQ10AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q10")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1993, 10, 1), MakeDate(1994, 1, 1)
	refRev := map[string]float64{}
	refN := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ReturnFlag != 'R' {
			continue
		}
		o := ds.Orders[l.OrderKey-1]
		if o.OrderDate < lo || o.OrderDate >= hi {
			continue
		}
		nation := ds.Nations[ds.Customers[o.CustKey-1].NationKey].Name
		refRev[nation] += l.ExtendedPrice * (1 - l.Discount)
		refN[nation]++
	}
	for nation, rev := range refRev {
		vals, ok := truth.Groups[nation]
		if !ok || !approxEq(vals[0], rev) || vals[1] != refN[nation] {
			t.Errorf("q10[%s] = %v, want [%v %v]", nation, vals, rev, refN[nation])
		}
	}
}

func TestQ11AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q11")
	if err != nil {
		t.Fatal(err)
	}
	var value, n float64
	for i := range ds.PartSupps {
		ps := &ds.PartSupps[i]
		if ds.Nations[ds.Suppliers[ps.SuppKey-1].NationKey].Name != "GERMANY" {
			continue
		}
		value += ps.SupplyCost * float64(ps.AvailQty)
		n++
	}
	vals := truth.Groups["germany"]
	if !approxEq(vals[0], value) || vals[1] != n {
		t.Fatalf("q11 = %v, want [%v %v]", vals, value, n)
	}
}

func TestQ14AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q14")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1995, 9, 1), MakeDate(1995, 10, 1)
	var promo, total float64
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate < lo || l.ShipDate >= hi {
			continue
		}
		rev := l.ExtendedPrice * (1 - l.Discount)
		total += rev
		if strings.HasPrefix(ds.Parts[l.PartKey-1].Type, "PROMO") {
			promo += rev
		}
	}
	vals := truth.Groups["all"]
	if !approxEq(vals[0], promo) || !approxEq(vals[1], total) {
		t.Fatalf("q14 = %v, want [%v %v]", vals, promo, total)
	}
}

func TestQ16AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q16")
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int32]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	ref := map[string]float64{}
	for i := range ds.PartSupps {
		ps := &ds.PartSupps[i]
		p := ds.Parts[ps.PartKey-1]
		if p.Brand == "Brand#45" || strings.HasPrefix(p.Type, "MEDIUM POLISHED") || !sizes[p.Size] {
			continue
		}
		if strings.Contains(ds.Suppliers[ps.SuppKey-1].Comment, "Customer Complaints") {
			continue
		}
		ref[p.Brand]++
	}
	if len(truth.Groups) != len(ref) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(ref))
	}
	for brand, n := range ref {
		vals, ok := truth.Groups[brand]
		if !ok || vals[0] != n {
			t.Errorf("q16[%s] = %v, want %v", brand, vals, n)
		}
	}
}

func TestQ20AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q20")
	if err != nil {
		t.Fatal(err)
	}
	var n, qtySum float64
	for i := range ds.PartSupps {
		ps := &ds.PartSupps[i]
		if ps.AvailQty <= 1000 {
			continue
		}
		if !strings.HasPrefix(ds.Parts[ps.PartKey-1].Name, "forest") {
			continue
		}
		if ds.Nations[ds.Suppliers[ps.SuppKey-1].NationKey].Name != "CANADA" {
			continue
		}
		n++
		qtySum += float64(ps.AvailQty)
	}
	if n == 0 {
		t.Skip("no qualifying partsupp rows at this scale/seed")
	}
	vals := truth.Groups["canada-forest"]
	if vals[0] != n || !approxEq(vals[1], qtySum/n) {
		t.Fatalf("q20 = %v, want [%v %v]", vals, n, qtySum/n)
	}
}

func TestQ3AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q3")
	if err != nil {
		t.Fatal(err)
	}
	pivot := MakeDate(1995, 3, 15)
	refRev := map[string]float64{}
	refN := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate <= pivot {
			continue
		}
		o := ds.Orders[l.OrderKey-1]
		if o.OrderDate >= pivot {
			continue
		}
		if ds.Customers[o.CustKey-1].MktSegment != "BUILDING" {
			continue
		}
		refRev[o.OrderPriority] += l.ExtendedPrice * (1 - l.Discount)
		refN[o.OrderPriority]++
	}
	if len(truth.Groups) != len(refRev) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(refRev))
	}
	for pri, rev := range refRev {
		vals, ok := truth.Groups[pri]
		if !ok || !approxEq(vals[0], rev) || vals[1] != refN[pri] {
			t.Errorf("q3[%s] = %v, want [%v %v]", pri, vals, rev, refN[pri])
		}
	}
}

func TestQ7AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q7")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)
	refVol := map[string]float64{}
	refN := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate < lo || l.ShipDate >= hi {
			continue
		}
		sn := ds.Nations[ds.Suppliers[l.SuppKey-1].NationKey].Name
		o := ds.Orders[l.OrderKey-1]
		cn := ds.Nations[ds.Customers[o.CustKey-1].NationKey].Name
		if !(sn == "FRANCE" && cn == "GERMANY") && !(sn == "GERMANY" && cn == "FRANCE") {
			continue
		}
		key := sn + "|" + cn + "|" + itoaYear(l.ShipDate.Year())
		refVol[key] += l.ExtendedPrice * (1 - l.Discount)
		refN[key]++
	}
	if len(truth.Groups) != len(refVol) {
		t.Fatalf("group count %d vs reference %d", len(truth.Groups), len(refVol))
	}
	for key, vol := range refVol {
		vals, ok := truth.Groups[key]
		if !ok || !approxEq(vals[0], vol) || vals[1] != refN[key] {
			t.Errorf("q7[%s] = %v, want [%v %v]", key, vals, vol, refN[key])
		}
	}
}

func itoaYear(y int) string {
	return string([]byte{byte('0' + y/1000), byte('0' + y/100%10), byte('0' + y/10%10), byte('0' + y%10)})
}

func TestQ8AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q8")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)
	refBrazil := map[string]float64{}
	refTotal := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if ds.Parts[l.PartKey-1].Type != "ECONOMY ANODIZED STEEL" {
			continue
		}
		o := ds.Orders[l.OrderKey-1]
		if o.OrderDate < lo || o.OrderDate >= hi {
			continue
		}
		cNation := ds.Nations[ds.Customers[o.CustKey-1].NationKey]
		if ds.Regions[cNation.RegionKey].Name != "AMERICA" {
			continue
		}
		key := itoaYear(o.OrderDate.Year())
		vol := l.ExtendedPrice * (1 - l.Discount)
		refTotal[key] += vol
		if ds.Nations[ds.Suppliers[l.SuppKey-1].NationKey].Name == "BRAZIL" {
			refBrazil[key] += vol
		}
	}
	for key, total := range refTotal {
		vals, ok := truth.Groups[key]
		if !ok || !approxEq(vals[1], total) {
			t.Errorf("q8[%s] total = %v, want %v", key, vals, total)
			continue
		}
		if bz := refBrazil[key]; !approxEq(vals[0], bz) && !(bz == 0 && vals[0] == 0) {
			t.Errorf("q8[%s] brazil = %v, want %v", key, vals[0], bz)
		}
	}
}

func TestQ13AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q13")
	if err != nil {
		t.Fatal(err)
	}
	refN := map[string]float64{}
	refPrice := map[string]float64{}
	for i := range ds.Orders {
		o := &ds.Orders[i]
		if strings.Contains(o.Comment, "special") {
			continue
		}
		nation := ds.Nations[ds.Customers[o.CustKey-1].NationKey].Name
		refN[nation]++
		refPrice[nation] += o.TotalPrice
	}
	for nation, n := range refN {
		vals, ok := truth.Groups[nation]
		if !ok || vals[0] != n || !approxEq(vals[1], refPrice[nation]/n) {
			t.Errorf("q13[%s] = %v, want [%v %v]", nation, vals, n, refPrice[nation]/n)
		}
	}
}

func TestQ15AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q15")
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := MakeDate(1996, 1, 1), MakeDate(1996, 4, 1)
	refSum := map[string]float64{}
	refMax := map[string]float64{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipDate < lo || l.ShipDate >= hi {
			continue
		}
		nation := ds.Nations[ds.Suppliers[l.SuppKey-1].NationKey].Name
		rev := l.ExtendedPrice * (1 - l.Discount)
		refSum[nation] += rev
		if rev > refMax[nation] {
			refMax[nation] = rev
		}
	}
	for nation, sum := range refSum {
		vals, ok := truth.Groups[nation]
		if !ok || !approxEq(vals[0], sum) || !approxEq(vals[1], refMax[nation]) {
			t.Errorf("q15[%s] = %v, want [%v %v]", nation, vals, sum, refMax[nation])
		}
	}
}

func TestQ19AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q19")
	if err != nil {
		t.Fatal(err)
	}
	var rev, n float64
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		if l.ShipMode != "AIR" && l.ShipMode != "REG AIR" {
			continue
		}
		if l.ShipInstruct != "DELIVER IN PERSON" {
			continue
		}
		p := ds.Parts[l.PartKey-1]
		match := (p.Brand == "Brand#12" && strings.HasPrefix(p.Container, "SM") &&
			l.Quantity >= 1 && l.Quantity <= 11 && p.Size >= 1 && p.Size <= 5) ||
			(p.Brand == "Brand#23" && strings.HasPrefix(p.Container, "MED") &&
				l.Quantity >= 10 && l.Quantity <= 20 && p.Size >= 1 && p.Size <= 10) ||
			(p.Brand == "Brand#34" && strings.HasPrefix(p.Container, "LG") &&
				l.Quantity >= 20 && l.Quantity <= 30 && p.Size >= 1 && p.Size <= 15)
		if !match {
			continue
		}
		rev += l.ExtendedPrice * (1 - l.Discount)
		n++
	}
	vals := truth.Groups["all"]
	if !approxEq(vals[0], rev) || vals[1] != n {
		t.Fatalf("q19 = %v, want [%v %v]", vals, rev, n)
	}
}

func TestQ21AgainstBruteForce(t *testing.T) {
	ds := Generate(0.01, 42)
	cat := NewCatalog(ds, 42)
	truth, err := cat.GroundTruth("q21")
	if err != nil {
		t.Fatal(err)
	}
	type o21 struct {
		supps map[int32]bool
		late  map[int32]bool
	}
	states := map[int32]*o21{}
	for i := range ds.Lineitems {
		l := &ds.Lineitems[i]
		o := ds.Orders[l.OrderKey-1]
		if o.OrderStatus != 'F' {
			continue
		}
		st, ok := states[l.OrderKey]
		if !ok {
			st = &o21{supps: map[int32]bool{}, late: map[int32]bool{}}
			states[l.OrderKey] = st
		}
		st.supps[l.SuppKey] = true
		if l.ReceiptDate > l.CommitDate {
			st.late[l.SuppKey] = true
		}
	}
	var numwait float64
	for _, st := range states {
		if len(st.supps) > 1 && len(st.late) == 1 {
			for sk := range st.late {
				if ds.Nations[ds.Suppliers[sk-1].NationKey].Name == "SAUDI ARABIA" {
					numwait++
				}
			}
		}
	}
	vals := truth.Groups["saudi-arabia"]
	if vals[0] != numwait {
		t.Fatalf("q21 = %v, want %v", vals, numwait)
	}
}
