// Rogue-peer injection: connections that violate the wire protocol in
// the ways real networks do — dying mid-frame, stalling after
// committing to a length, speaking garbage — aimed at a live server.
// The injector asserts nothing itself; the harness checks the server
// still answers afterwards, and the codec unit tests pin down the
// exact per-fault behaviour (clean close, typed error, stall bound).
package torture

import (
	"encoding/binary"
	"net"
	"time"

	"rotary/internal/sim"
)

// binMagic is the binary codec's connection preamble (see
// internal/serve/codec.go — a wire constant, stable by contract).
var binMagic = []byte{0xB1, 'R', 'B', '1'}

// injectConnFaults runs one volley of rogue connections against the
// socket, seeded so a failing seed replays the same volley. Each rogue
// is bounded: nothing here waits on the server.
func injectConnFaults(socket string, rng *sim.Rand) {
	rogues := []func(net.Conn, *sim.Rand){
		rogueMidFrameDrop,
		rogueMidFrameStall,
		rogueHostileLength,
		rogueGarbageJSON,
		rogueInstantClose,
	}
	volley := 3 + rng.IntN(4)
	for i := 0; i < volley; i++ {
		conn, err := net.DialTimeout("unix", socket, time.Second)
		if err != nil {
			continue // server mid-restart: the volley just misses
		}
		rogues[rng.IntN(len(rogues))](conn, rng)
		conn.Close()
	}
}

// rogueMidFrameDrop commits to a frame with a length header, sends a
// partial payload, and vanishes.
func rogueMidFrameDrop(conn net.Conn, rng *sim.Rand) {
	var hdr [4]byte
	claim := 32 + rng.IntN(256)
	binary.BigEndian.PutUint32(hdr[:], uint32(claim))
	conn.Write(binMagic)
	conn.Write(hdr[:])
	conn.Write(make([]byte, rng.IntN(claim)))
}

// rogueMidFrameStall is the drop with a dwell: the server's mid-frame
// deadline is what bounds the damage, but the rogue itself only dwells
// briefly — the harness must not serialize on the server's patience.
func rogueMidFrameStall(conn net.Conn, rng *sim.Rand) {
	rogueMidFrameDrop(conn, rng)
	time.Sleep(time.Duration(10+rng.IntN(40)) * time.Millisecond)
}

// rogueHostileLength claims a frame far past the size bound; the server
// answers too-large and closes.
func rogueHostileLength(conn net.Conn, _ *sim.Rand) {
	conn.Write(binMagic)
	conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
}

// rogueGarbageJSON speaks the JSON codec badly: unparseable lines that
// must each earn a typed bad-request on a still-open connection.
func rogueGarbageJSON(conn net.Conn, rng *sim.Rand) {
	lines := 1 + rng.IntN(3)
	for i := 0; i < lines; i++ {
		conn.Write([]byte("{\"op\": \x7f garbage\n"))
	}
}

// rogueInstantClose connects and leaves — the TCP equivalent of a
// wrong number.
func rogueInstantClose(net.Conn, *sim.Rand) {}
