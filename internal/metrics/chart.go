package metrics

import (
	"fmt"
	"math"
	"strings"
)

// XY is one point of a plotted series.
type XY struct {
	X, Y float64
}

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []XY
}

// seriesGlyphs mark the lines; a cell holding two series shows '#'.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '@', '%', '&', '$'}

// RenderLineChart plots the series on a shared plain-text grid — the
// terminal rendering of the paper's figures. Width and height count the
// plot area's characters; the axes and legend are added around it. Y is
// auto-scaled to the data (with 0 included when the data is non-negative,
// so progress curves read naturally).
func RenderLineChart(title string, series []Series, width, height int) string {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			n++
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	if n == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if minY > 0 {
		minY = 0 // anchor non-negative data at zero
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			if cur := grid[row][col]; cur != ' ' && cur != glyph {
				grid[row][col] = '#'
			} else {
				grid[row][col] = glyph
			}
		}
	}

	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		}
		b.WriteString(label)
		b.WriteByte('|')
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString("        +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "        %-*.5g%*.5g\n", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
	return b.String()
}
