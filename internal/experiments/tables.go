package experiments

import (
	"fmt"
	"strings"

	"rotary/internal/criteria"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// Table1Result reproduces Table I: the synthetic AQP workload definition
// plus one sampled instance.
type Table1Result struct {
	Specs []workload.AQPSpec
	Text  string
}

// Table1 regenerates Table I.
func Table1(cfg Config) (*Table1Result, error) {
	specs := workload.GenerateAQP(workload.DefaultAQPWorkload(cfg.AQPJobs, cfg.Seed))
	var b strings.Builder
	b.WriteString("Table I: synthetic AQP workload\n")
	fmt.Fprintf(&b, " light queries : %s\n", strings.Join(tpch.QueriesOfClass(tpch.Light), ", "))
	fmt.Fprintf(&b, " medium queries: %s\n", strings.Join(tpch.QueriesOfClass(tpch.Medium), ", "))
	fmt.Fprintf(&b, " heavy queries : %s\n", strings.Join(tpch.QueriesOfClass(tpch.Heavy), ", "))
	fmt.Fprintf(&b, " accuracy thresholds: %v\n", workload.AccuracyThresholds)
	fmt.Fprintf(&b, " deadlines light  (s): %v\n", workload.DeadlinesByClass[tpch.Light])
	fmt.Fprintf(&b, " deadlines medium (s): %v\n", workload.DeadlinesByClass[tpch.Medium])
	fmt.Fprintf(&b, " deadlines heavy  (s): %v\n", workload.DeadlinesByClass[tpch.Heavy])
	b.WriteString(" mix: 40% light, 30% medium, 30% heavy; Poisson arrivals, mean 160 s\n\n")
	fmt.Fprintf(&b, " sampled workload (%d jobs, seed %d):\n", len(specs), cfg.Seed)
	fmt.Fprintf(&b, " %-16s %-7s %-7s %9s %10s %9s\n", "id", "query", "class", "acc", "deadline", "arrival")
	for _, s := range specs {
		fmt.Fprintf(&b, " %-16s %-7s %-7s %8.0f%% %9.0fs %8.0fs\n",
			s.ID, s.Query, s.Class, s.Accuracy*100, s.DeadlineSecs, s.ArrivalSecs)
	}
	return &Table1Result{Specs: specs, Text: b.String()}, nil
}

// Table2Result reproduces Table II: the survey-based DLT workload
// definition plus one sampled instance.
type Table2Result struct {
	Specs []workload.DLTSpec
	Text  string
}

// Table2 regenerates Table II.
func Table2(cfg Config) (*Table2Result, error) {
	specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(cfg.DLTJobs, cfg.Seed))
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Table II: synthetic DLT workload\n")
	fmt.Fprintf(&b, " convergence deltas: %v\n", workload.ConvergenceDeltas)
	fmt.Fprintf(&b, " accuracy targets  : %v\n", workload.AccuracyTargets)
	fmt.Fprintf(&b, " runtime epochs    : scratch %v, pre-trained %v\n",
		workload.RuntimeEpochsScratch, workload.RuntimeEpochsPretrained)
	fmt.Fprintf(&b, " max epochs        : %v\n", workload.MaxEpochChoices)
	b.WriteString(" mix: 60% convergence, 20% accuracy, 20% runtime criteria\n\n")
	fmt.Fprintf(&b, " sampled workload (%d jobs, seed %d):\n", len(specs), cfg.Seed)
	fmt.Fprintf(&b, " %-26s %-12s %6s %-9s %8s %-12s %s\n",
		"id", "dataset", "batch", "optimizer", "lr", "kind", "criteria")
	for _, s := range specs {
		fmt.Fprintf(&b, " %-26s %-12s %6d %-9s %8g %-12s %v\n",
			s.ID, s.Config.Dataset, s.Config.BatchSize, s.Config.Optimizer, s.Config.LR,
			s.Criteria.Kind, s.Criteria)
	}
	// Criteria-mix sanity line for tests.
	counts := map[criteria.Kind]int{}
	for _, s := range specs {
		counts[s.Criteria.Kind]++
	}
	fmt.Fprintf(&b, "\n criteria mix observed: convergence=%d accuracy=%d runtime=%d\n",
		counts[criteria.Convergence], counts[criteria.Accuracy], counts[criteria.Runtime])
	return &Table2Result{Specs: specs, Text: b.String()}, nil
}
