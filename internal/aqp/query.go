package aqp

import (
	"encoding/json"
	"fmt"
	"math"

	"rotary/internal/stream"
)

// Speedup models the sublinear scaling of a query over hardware threads.
// Batch cost at t threads is the single-thread cost divided by Speedup(t);
// the exponent reflects the diminishing parallel efficiency the paper's
// testbed exhibits (shared scans, aggregation merge).
func Speedup(threads int) float64 {
	if threads <= 1 {
		return 1
	}
	return math.Pow(float64(threads), 0.85)
}

// CostModel charges virtual seconds for batch processing. Heavier TPC-H
// queries (more joins, more per-row state) carry larger SecsPerRow, which
// is what makes the light/medium/heavy classes of Table I differ in
// runtime as well as memory.
type CostModel struct {
	// SecsPerRow is the single-thread virtual processing cost per fact row.
	SecsPerRow float64
	// FixedPerBatch is a per-batch overhead (scheduling, result merge).
	FixedPerBatch float64
}

// BatchCost reports the virtual seconds to process rows fact rows with the
// given thread allocation.
func (c CostModel) BatchCost(rows, threads int) float64 {
	if rows <= 0 {
		return 0
	}
	return (float64(rows)*c.SecsPerRow + c.FixedPerBatch) / Speedup(threads)
}

// Processor is the per-query streaming program: a fold over fact-row
// batches into a GroupTable, plus optional hooks to persist auxiliary
// per-key state (the Q17/Q18/Q21-style maps) across checkpoints.
type Processor[T any] struct {
	// Process folds a batch into the running aggregates.
	Process func(rows []T, gt *GroupTable)
	// SaveAux/LoadAux serialize auxiliary state. Nil means stateless.
	SaveAux func() (json.RawMessage, error)
	LoadAux func(json.RawMessage) error
	// AuxBytes reports the auxiliary state's current footprint. Nil means
	// zero.
	AuxBytes func() int64
}

// OnlineQuery is the engine's view of one progressive query, independent
// of its fact-row type. Rotary-AQP jobs wrap this interface.
type OnlineQuery interface {
	// Name is the query identifier (e.g. "q5").
	Name() string
	// ProcessBatch pulls up to batchRows fact rows, folds them into the
	// running aggregates, and returns the rows consumed plus the virtual-
	// second cost under the given thread allocation. rows == 0 means the
	// stream is exhausted.
	ProcessBatch(batchRows, threads int) (rows int, cost float64)
	// Exhausted reports whether the whole dataset has been processed.
	Exhausted() bool
	// Snapshot returns the current intermediate aggregates.
	Snapshot() Snapshot
	// Accuracy returns the paper's αc/αf accuracy against the final
	// answer, or 0 if no ground truth is attached.
	Accuracy() float64
	// DataProgress reports the fraction of the dataset consumed.
	DataProgress() float64
	// RowsProcessed reports the total fact rows consumed.
	RowsProcessed() int64
	// StateMemMB reports the current footprint of the running state
	// (aggregates + auxiliary maps) in MB.
	StateMemMB() float64
	// ConfidenceInterval reports the §III-B optional error bound of one
	// aggregate cell at confidence z given the current progressive sample.
	ConfidenceInterval(group string, col int, z float64) (lo, hi float64, ok bool)
	// Checkpoint serializes the complete job state (stream position,
	// aggregates, auxiliary state).
	Checkpoint() ([]byte, error)
	// Restore replaces the job state with a checkpoint taken from an
	// identically-constructed query.
	Restore([]byte) error
}

// Running is the concrete OnlineQuery over fact-row type T.
type Running[T any] struct {
	name     string
	consumer *stream.Consumer[T]
	gt       *GroupTable
	proc     Processor[T]
	cost     CostModel
	final    *Snapshot
	rows     int64
}

// NewRunning assembles an online query from its parts. The consumer must
// be exclusive to this query.
func NewRunning[T any](name string, consumer *stream.Consumer[T], specs []AggSpec, proc Processor[T], cost CostModel) *Running[T] {
	if proc.Process == nil {
		panic("aqp: Processor.Process must be set")
	}
	return &Running[T]{
		name:     name,
		consumer: consumer,
		gt:       NewGroupTable(specs),
		proc:     proc,
		cost:     cost,
	}
}

// SetFinal attaches the ground-truth final answer used by Accuracy.
func (r *Running[T]) SetFinal(final Snapshot) { r.final = &final }

// Name implements OnlineQuery.
func (r *Running[T]) Name() string { return r.name }

// ProcessBatch implements OnlineQuery.
func (r *Running[T]) ProcessBatch(batchRows, threads int) (int, float64) {
	batch, ok := r.consumer.NextBatch(batchRows)
	if !ok {
		return 0, 0
	}
	r.proc.Process(batch, r.gt)
	r.rows += int64(len(batch))
	return len(batch), r.cost.BatchCost(len(batch), threads)
}

// Exhausted implements OnlineQuery.
func (r *Running[T]) Exhausted() bool { return r.consumer.Remaining() == 0 }

// Snapshot implements OnlineQuery.
func (r *Running[T]) Snapshot() Snapshot { return r.gt.Snapshot() }

// Accuracy implements OnlineQuery.
func (r *Running[T]) Accuracy() float64 {
	if r.final == nil {
		return 0
	}
	return Accuracy(r.gt.Snapshot(), *r.final)
}

// DataProgress implements OnlineQuery.
func (r *Running[T]) DataProgress() float64 { return r.consumer.Progress() }

// RowsProcessed implements OnlineQuery.
func (r *Running[T]) RowsProcessed() int64 { return r.rows }

// ConfidenceInterval implements OnlineQuery.
func (r *Running[T]) ConfidenceInterval(group string, col int, z float64) (lo, hi float64, ok bool) {
	return r.gt.ConfidenceInterval(group, col, z, r.consumer.Progress())
}

// StateMemMB implements OnlineQuery.
func (r *Running[T]) StateMemMB() float64 {
	b := r.gt.StateBytes()
	if r.proc.AuxBytes != nil {
		b += r.proc.AuxBytes()
	}
	return float64(b) / (1 << 20)
}

// checkpoint is the serialized form of a Running query.
type checkpoint struct {
	Name     string               `json:"name"`
	Consumer stream.ConsumerState `json:"consumer"`
	Table    json.RawMessage      `json:"table"`
	Aux      json.RawMessage      `json:"aux,omitempty"`
	Rows     int64                `json:"rows"`
}

// Checkpoint implements OnlineQuery.
func (r *Running[T]) Checkpoint() ([]byte, error) {
	tbl, err := json.Marshal(r.gt)
	if err != nil {
		return nil, fmt.Errorf("aqp: checkpoint %s: %w", r.name, err)
	}
	cp := checkpoint{Name: r.name, Consumer: r.consumer.Offsets(), Table: tbl, Rows: r.rows}
	if r.proc.SaveAux != nil {
		aux, err := r.proc.SaveAux()
		if err != nil {
			return nil, fmt.Errorf("aqp: checkpoint %s aux: %w", r.name, err)
		}
		cp.Aux = aux
	}
	return json.Marshal(cp)
}

// Restore implements OnlineQuery.
func (r *Running[T]) Restore(data []byte) error {
	var cp checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("aqp: restore: %w", err)
	}
	if cp.Name != r.name {
		return fmt.Errorf("aqp: restore: checkpoint is for %q, query is %q", cp.Name, r.name)
	}
	if err := r.consumer.Seek(cp.Consumer); err != nil {
		return fmt.Errorf("aqp: restore %s: %w", r.name, err)
	}
	gt := &GroupTable{}
	if err := json.Unmarshal(cp.Table, gt); err != nil {
		return fmt.Errorf("aqp: restore %s table: %w", r.name, err)
	}
	r.gt = gt
	if cp.Aux != nil && r.proc.LoadAux != nil {
		if err := r.proc.LoadAux(cp.Aux); err != nil {
			return fmt.Errorf("aqp: restore %s aux: %w", r.name, err)
		}
	}
	r.rows = cp.Rows
	return nil
}
