// Crash-restart recovery: how a journaled server rebuilds the previous
// incarnation's arbiter state at startup, and how the running server
// keeps the journal in lockstep with the executor afterwards.
//
// Recovery replays the journal's valid prefix (done by OpenJournal),
// restores the virtual clock to the last journaled position, and
// re-registers every non-terminal job with the executor in original
// arrival order — bypassing the admission gate, since each was already
// admitted by the previous incarnation and re-judging it against the
// post-restart (empty) load would change the verdict history. Each
// recovered job reattaches to its latest durable checkpoint at its first
// grant; when none survived it restarts from pristine scratch, counted in
// RecoveryStats.ScratchRestarts. Deadlines are absolute across restarts:
// a recovered job's remaining budget is (arrival + deadline) − recovered
// clock, never the full deadline again.
package serve

import (
	"fmt"
	"path/filepath"
	"strings"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/diskio"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// OpenDurable opens the durability pair rooted at dir: the write-ahead
// journal (dir/serve.journal) and a disk-only checkpoint store
// (dir/ckpt) whose startup sweep retains every checkpoint the journal
// still references as live — a recovered job's reattach target must
// survive the sweep that would otherwise clear "stale" files from the
// killed incarnation. The store is disk-only (no memory tier) so every
// save is durable by the time the epoch that produced it is journaled.
func OpenDurable(dir string) (*Journal, *core.CheckpointStore, error) {
	return OpenDurableIO(dir, nil)
}

// OpenDurableIO is OpenDurable with the disk-I/O layer pluggable: both
// the journal and the checkpoint store route every durable operation
// through dio (nil means the real filesystem), so one seeded
// diskio.Faulty can deal ENOSPC, EIO, and torn writes to the entire
// durability stack at once — the torture harness's disk-fault hook.
func OpenDurableIO(dir string, dio diskio.IO) (*Journal, *core.CheckpointStore, error) {
	jl, err := OpenJournalIO(dir, dio)
	if err != nil {
		return nil, nil, err
	}
	live := jl.NonTerminalIDs()
	store, err := core.NewCheckpointStoreIO(filepath.Join(dir, "ckpt"), 0,
		func(id string) bool { return live[id] }, dio)
	if err != nil {
		jl.Close()
		return nil, nil, err
	}
	return jl, store, nil
}

// recoverFromJournal rebuilds the previous incarnation's state (New,
// before the driver starts): clock, req_id dedupe index, journal diff
// marks, and the executor's job registry in original arrival order.
func (s *Server) recoverFromJournal() error {
	rec := s.jl.Recovered()
	eng := s.exec.Engine()
	// RunUntil advances the clock to the deadline even with an empty
	// event queue — the clock-restoration primitive.
	if vn := sim.Time(rec.VirtualNow); vn > eng.Now() {
		eng.RunUntil(vn)
	}
	s.lastClockAt = eng.Now().Seconds()
	// Rebuild the per-tenant admission buckets as a pure fold over the
	// journaled history: one ReplayAdmitted per historically admitted
	// arrival, in arrival order, at each arrival's virtual time. Rejected
	// arrivals never consumed a token, so they are skipped — after this
	// loop the bucket state is bit-identical to the uninterrupted run's.
	// ("submitted" with no verdict — the torn-append window — replays as
	// admitted, matching its re-registration below.)
	if ctrl := s.exec.Admission(); ctrl != nil {
		for _, jr := range rec.Jobs {
			if jr.Status != "rejected" {
				ctrl.ReplayAdmitted(jr.Tenant, jr.ArrivalAt)
			}
		}
	}
	for _, jr := range rec.Jobs {
		if jr.ReqID != "" {
			s.reqIndex[jr.ReqID] = jr.ID
		}
		if terminalStatus(jr.Status) {
			// Terminal in the journal: nothing to re-register, and the diff
			// mark stops syncState from ever logging it again.
			s.lastJourn[jr.ID] = &jobMark{terminal: true, epochs: jr.Epochs}
		}
		// Recover the auto-id counter past every journaled "srv-<n>" id —
		// terminal ones included — so a restart never re-mints an id the
		// journal still remembers.
		var n int
		if _, err := fmt.Sscanf(jr.ID, "srv-%d", &n); err == nil && n >= s.nextAutoID {
			s.nextAutoID = n + 1
		}
	}
	live := rec.NonTerminal()
	for _, jr := range live {
		j, err := s.rebuildJob(jr)
		if err != nil {
			return fmt.Errorf("serve: recover job %s: %w", jr.ID, err)
		}
		// Seed the mark at the journaled epoch count so replayed progress
		// is not re-journaled; only epochs beyond it append records.
		s.lastJourn[jr.ID] = &jobMark{epochs: jr.Epochs}
		s.exec.Recover(j, eng.Now(), jr.BestEffort)
		s.registerJob(j)
	}
	// Fire the re-registrations and their same-instant arbitration so the
	// recovered queue is granted before the first client request.
	eng.RunUntil(eng.Now())
	s.recovered = len(live)
	s.met.recoveredJobs.Add(int64(len(live)))
	s.syncState()
	return nil
}

// rebuildJob reconstructs one journaled job from its submitted statement,
// with its deadline clipped to what remains of the original budget.
func (s *Server) rebuildJob(jr JobRecord) (*core.AQPJob, error) {
	cmd, crit, err := criteria.Parse(jr.Statement)
	if err != nil {
		return nil, err
	}
	deadline, ok := crit.Deadline.DeadlineSeconds()
	if !ok {
		return nil, fmt.Errorf("serve: journaled job has a non-wall-time deadline")
	}
	query := strings.ToLower(strings.TrimSpace(cmd))
	cls, err := tpch.ClassOf(query)
	if err != nil {
		return nil, err
	}
	// Absolute-deadline arithmetic: (arrival + D) − recovered now. A job
	// whose deadline already passed gets an epsilon budget — it
	// re-registers, its watchdog fires immediately, and it terminates with
	// the same "expired" status the uninterrupted run would have reached.
	remaining := jr.ArrivalAt + deadline - s.exec.Engine().Now().Seconds()
	if remaining < 1e-3 {
		remaining = 1e-3
	}
	batch := jr.BatchRows
	if batch <= 0 {
		batch = s.cfg.BatchRows
	}
	return workload.BuildAQPJob(s.cat, workload.AQPSpec{
		ID:           jr.ID,
		Query:        query,
		Class:        cls,
		Tenant:       jr.Tenant,
		Accuracy:     crit.Threshold,
		DeadlineSecs: remaining,
		BatchRows:    batch,
	})
}

// journal logs records with write-ahead ordering. Outside a batch the
// records are appended (and fsynced) immediately. Inside a batch —
// handleBatch sets s.staging around each request — they are staged and
// group-committed by flushStaged under ONE fsync for the whole batch;
// the write-ahead contract still holds per client because handleBatch
// releases no reply before that flush returns.
func (s *Server) journal(recs ...Record) {
	if s.jl == nil || len(recs) == 0 {
		return
	}
	if s.staging {
		s.staged = append(s.staged, recs...)
		return
	}
	s.appendNow(recs)
}

// appendNow appends records to the journal immediately and folds the
// outcome into the serve-level durability telemetry. Append failures
// outside the write-ahead paths degrade durability, not availability:
// the error is surfaced on the health op and counted. (Write-ahead
// paths — submit, migrate-in, and batched replies — additionally refuse
// once the journal latches degraded.)
func (s *Server) appendNow(recs []Record) error {
	err := s.jl.Append(recs...)
	if err != nil {
		s.jlErr = err
		s.met.journalErrors.Inc()
		return err
	}
	s.met.journalRecords.Add(int64(len(recs)))
	_, compactions, _ := s.jl.Stats()
	if d := compactions - s.met.journalCompact.Value(); d > 0 {
		s.met.journalCompact.Add(d)
	}
	return nil
}

// journalClock persists the current clock position unconditionally (the
// advance op's explicit jump).
func (s *Server) journalClock() {
	if s.jl == nil {
		return
	}
	now := s.exec.Engine().Now().Seconds()
	s.journal(Record{Kind: recClock, At: now})
	s.lastClockAt = now
}

// syncState diffs the live job set against the last journaled position
// of each job and appends the missing transitions — grants, completed
// epochs, terminal statuses — in one batch. Called from the driver
// goroutine after every block of virtual-time progress (submit, advance,
// tick, drain), it guarantees the journal never lags the state a client
// could observe, without instrumenting the executor's event handlers.
//
// It walks s.liveList (registration order, so record order is
// deterministic) rather than the executor's full registry: cost per
// sweep is proportional to in-flight jobs, not lifetime submits. Jobs
// that reach a terminal status are pruned from the live set here, which
// is also where the terminal counter advances. The walk runs even
// without a journal — the live set and counters back resume/stats — and
// s.journal drops the records when jl is nil. A periodic clock record
// bounds how far an idle paced server's restart may rewind time.
func (s *Server) syncState() {
	if s.jl != nil && s.jl.Degraded() != nil {
		// Freeze the diff marks while the journal is degraded: advancing
		// them would count transitions as journaled that the failed
		// appends dropped. The live state keeps moving; the first sweep
		// after a successful heal (maybeHeal calls one) re-diffs every
		// job against its frozen mark and re-emits exactly the missed
		// records onto the fresh segment.
		return
	}
	now := s.exec.Engine().Now().Seconds()
	var recs []Record
	keep := s.liveList[:0]
	for _, e := range s.liveList {
		if e.gone {
			continue // detached by migrate-out; a re-registered id got a fresh entry
		}
		j, mark := e.j, e.mark
		if mark.terminal {
			// Journal already holds its terminal record (e.g. a committed
			// migration); just retire it from the live set.
			delete(s.liveJobs, j.ID())
			s.terminal++
			continue
		}
		if ep := j.Epochs(); ep > mark.epochs {
			recs = append(recs, Record{Kind: recEpoch, ID: j.ID(), Epochs: ep, At: now})
			mark.epochs = ep
			mark.running = false
		}
		st := j.Status()
		if st.Terminal() {
			recs = append(recs, Record{Kind: recTerminal, ID: j.ID(), Status: st.String(), Epochs: j.Epochs(), At: now})
			mark.terminal = true
			delete(s.liveJobs, j.ID())
			s.terminal++
			continue
		}
		if running := st == core.StatusRunning; running != mark.running {
			if running {
				recs = append(recs, Record{Kind: recGrant, ID: j.ID(), At: now})
			}
			mark.running = running
		}
		keep = append(keep, e)
	}
	s.liveList = keep
	s.liveSize.Store(int64(len(s.liveJobs)))
	if s.jl != nil && now-s.lastClockAt >= s.cfg.ClockJournalSecs {
		recs = append(recs, Record{Kind: recClock, At: now})
		s.lastClockAt = now
	}
	s.journal(recs...)
}
