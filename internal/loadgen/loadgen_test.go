package loadgen

import (
	"strings"
	"testing"
	"time"
)

func TestSummarizeQuantiles(t *testing.T) {
	// 1..1000ms: exact quantile indices are easy to check by hand.
	sorted := make([]float64, 1000)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	s := summarize(sorted)
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", s.P50, 500}, {"p90", s.P90, 900}, {"p99", s.P99, 990},
		{"p999", s.P999, 999}, {"max", s.Max, 1000},
	} {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := summarize(nil)
	if s.Count != 0 || s.P99 != 0 || s.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestMergeSorts(t *testing.T) {
	got := merge([][]float64{{3, 1}, {2}, nil, {0.5}})
	want := []float64{0.5, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}

func TestHistogramBucketsAndCumulative(t *testing.T) {
	r := &Result{submitLat: []float64{0.04, 0.09, 0.9, 40, 2000}}
	h := r.Histogram()
	if !strings.Contains(h, "5 samples") {
		t.Fatalf("missing sample count:\n%s", h)
	}
	// 0.04 lands in <=0.05, 0.09 in <=0.1, 0.9 in <=1, 40 in <=50,
	// 2000 in the overflow bucket; cumulative must end at 100%.
	for _, want := range []string{"<=0.05", "<=0.1", "<=1", "<=50", ">1000", "100.00%"} {
		if !strings.Contains(h, want) {
			t.Fatalf("histogram missing %q:\n%s", want, h)
		}
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty addr accepted")
	}
	// Closed loop (rate 0) without an op bound has no stopping rule.
	if _, err := Run(Config{Addr: "x.sock"}); err == nil {
		t.Fatal("closed loop without ops accepted")
	}
}

// TestSelfBenchEnd2End runs a miniature version of the BENCH_2
// experiment — both servers, real journals, real sockets — and checks
// the invariants the committed report relies on: equal durable history
// across cases and strictly fewer fsyncs under group commit.
func TestSelfBenchEnd2End(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two durable servers")
	}
	var lines []string
	rep, err := RunBench(BenchConfig{
		Dir:      t.TempDir(),
		Ops:      96,
		Conns:    16,
		Batch:    16,
		Progress: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cases) != 2 {
		t.Fatalf("cases = %d", len(rep.Cases))
	}
	base, batched := rep.Cases[0], rep.Cases[1]
	if base.Records != batched.Records {
		t.Errorf("durable history diverged: baseline %d records, batched %d", base.Records, batched.Records)
	}
	if batched.Syncs >= base.Syncs {
		t.Errorf("group commit did not amortize fsyncs: %d vs baseline %d", batched.Syncs, base.Syncs)
	}
	if base.Result.Acked != int64(96) || batched.Result.Acked != int64(96) {
		t.Errorf("acks: baseline %d, batched %d, want 96", base.Result.Acked, batched.Result.Acked)
	}
	if rep.FsyncNs <= 0 {
		t.Errorf("fsync calibration missing: %d", rep.FsyncNs)
	}
	if len(lines) < 3 {
		t.Errorf("progress lines = %d, want >= 3", len(lines))
	}
}

// TestOpenLoopLatencyFromSchedule verifies the coordinated-omission
// discipline indirectly: with a rate low enough that the server is
// never the bottleneck, measured open-loop latency must stay near the
// round-trip time, proving the schedule subtraction is anchored at the
// arrival, not at send.
func TestOpenLoopSoakSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a durable server")
	}
	rep, err := RunBench(BenchConfig{
		Dir:         t.TempDir(),
		Ops:         32,
		Conns:       8,
		Batch:       16,
		SoakClients: 500,
		SoakRate:    200,
		SoakSecs:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Soak == nil {
		t.Fatal("soak case missing")
	}
	if rep.Soak.Clients != 500 {
		t.Errorf("soak clients = %d", rep.Soak.Clients)
	}
	if rep.Soak.Acked == 0 || rep.Soak.Errors > 0 {
		t.Errorf("soak acked %d errors %d", rep.Soak.Acked, rep.Soak.Errors)
	}
	if rep.Soak.Submit.P50 <= 0 || rep.Soak.Submit.P50 > 5*float64(time.Second/time.Millisecond) {
		t.Errorf("soak p50 %.2fms implausible", rep.Soak.Submit.P50)
	}
}
