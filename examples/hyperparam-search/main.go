// hyperparam-search reproduces the introduction's hyperparameter-
// optimization scenario: "resource arbitration could stop the trials that
// contain unpromising hyperparameter configurations prematurely and
// allocate more resources to the promising ones so that the best-
// performing hyperparameters can be discovered sooner."
//
// Sixteen trials of the same architecture — a grid over optimizer and
// learning rate — run under efficiency Rotary-DLT with accuracy-oriented
// criteria. The arbiter's estimates starve the hopeless trials; the run
// reports when the first trial reached the target and how many epochs the
// losing trials consumed, against a round-robin (SRF-tail) baseline.
package main

import (
	"fmt"
	"log"

	"rotary"
)

const targetAcc = 0.88

func buildTrials() []rotary.DLTSpec {
	crit, err := rotary.NewAccuracyCriteria("ACC", targetAcc,
		rotary.Deadline{Value: 25, Unit: rotary.Epochs})
	if err != nil {
		log.Fatal(err)
	}
	var specs []rotary.DLTSpec
	i := 0
	for _, opt := range []string{"sgd", "momentum", "adam", "adagrad"} {
		for _, lr := range []float64{0.1, 0.01, 0.001, 0.0001} {
			specs = append(specs, rotary.DLTSpec{
				ID: fmt.Sprintf("trial-%02d-%s-lr%g", i, opt, lr),
				Config: rotary.DLTConfig{
					Model: "resnet-18", Dataset: "cifar10", BatchSize: 32,
					Optimizer: opt, LR: lr, Seed: uint64(100 + i),
				},
				Criteria: crit,
			})
			i++
		}
	}
	return specs
}

func run(label string, sched rotary.DLTScheduler, repo *rotary.Repository, specs []rotary.DLTSpec) {
	exec := rotary.NewDLTExecutor(rotary.DefaultDLTExecConfig(), sched, repo)
	for _, spec := range specs {
		j, err := rotary.BuildDLTJob(spec)
		if err != nil {
			log.Fatal(err)
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		log.Fatal(err)
	}

	firstWin := rotary.Time(0)
	winners := 0
	totalEpochs := 0
	wastedEpochs := 0
	var best *rotary.DLTJob
	for _, j := range exec.Jobs() {
		totalEpochs += j.Epochs()
		if j.Status() == rotary.StatusAttainedStop {
			winners++
			if firstWin == 0 || j.EndTime() < firstWin {
				firstWin = j.EndTime()
			}
		} else {
			wastedEpochs += j.Epochs()
		}
		if best == nil || j.Accuracy() > best.Accuracy() {
			best = j
		}
	}
	fmt.Printf("\n%s\n", label)
	fmt.Printf("  first trial at %.0f%% accuracy after %.0f virtual minutes\n", targetAcc*100, firstWin.Minutes())
	fmt.Printf("  %d/%d trials reached the target; best config: %s (%.1f%%)\n",
		winners, len(specs), best.ID(), best.Accuracy()*100)
	fmt.Printf("  epochs spent: %d total, %d on losing trials\n", totalEpochs, wastedEpochs)
	fmt.Printf("  makespan: %.0f minutes\n", exec.Engine().Now().Minutes())
}

func main() {
	log.SetFlags(0)
	specs := buildTrials()
	fmt.Printf("hyperparameter search: %d trials of resnet-18, target %.0f%% accuracy\n",
		len(specs), targetAcc*100)

	repo := rotary.NewRepository()
	if err := rotary.SeedDLTHistory(repo, 40, 30, 5); err != nil {
		log.Fatal(err)
	}
	run("efficiency Rotary-DLT (prunes unpromising trials)",
		rotary.NewRotaryDLT(0, rotary.NewTEE(repo, 3), rotary.NewTME(repo, 3)), repo, specs)

	repo2 := rotary.NewRepository()
	run("round-robin baseline (every trial gets equal turns)",
		rotary.SRF{}, repo2, specs)

	successiveHalving(specs)
}

// successiveHalving runs the same grid through the hpo package's
// Hyperband-style controller, which formalizes the pruning the arbiter
// does organically above.
func successiveHalving(specs []rotary.DLTSpec) {
	configs := make([]rotary.DLTConfig, len(specs))
	for i, s := range specs {
		configs[i] = s.Config
	}
	res, err := rotary.HPOSearch(rotary.DefaultHPOConfig(), configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsuccessive-halving controller (hpo package)")
	for _, r := range res.Rungs {
		fmt.Printf("  rung %d: %2d trials × %2d epochs, best accuracy %.1f%%\n",
			r.Rung, r.Trials, r.EpochsPer, r.BestAcc*100)
	}
	fmt.Printf("  winner: %s (%.1f%%) using %d total epochs in %.0f virtual minutes\n",
		res.Best.ID, res.Best.Accuracy()*100, res.TotalEpochs, res.VirtualSecs/60)
}
