package aqp

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"rotary/internal/sim"
	"rotary/internal/stream"
)

// allKindSpecs covers every aggregate kind the engine supports.
func allKindSpecs() []AggSpec {
	return []AggSpec{
		{Name: "s", Kind: Sum}, {Name: "c", Kind: Count}, {Name: "a", Kind: Avg},
		{Name: "mn", Kind: Min}, {Name: "mx", Kind: Max},
	}
}

// synthRow is a synthetic fact row for the parallel-path tests.
type synthRow struct {
	Group string
	V     float64
}

func synthRows(seed uint64, n, groups int) []synthRow {
	r := sim.NewRand(seed)
	rows := make([]synthRow, n)
	for i := range rows {
		rows[i] = synthRow{
			Group: fmt.Sprintf("g%d", r.IntN(groups)),
			V:     r.Range(-1000, 1000),
		}
	}
	return rows
}

func synthProcessor() Processor[synthRow] {
	return Processor[synthRow]{Process: func(rows []synthRow, gt *GroupTable) {
		for i := range rows {
			v := rows[i].V
			gt.Update(rows[i].Group, v, 1, v, v, v)
		}
	}}
}

func drain(q *Running[synthRow], batch, width int) {
	for {
		rows, _ := q.ProcessBatch(batch, width)
		if rows == 0 {
			return
		}
	}
}

// snapshotsIdentical demands bit-exact equality — no tolerance.
func snapshotsIdentical(t *testing.T, label string, a, b Snapshot) {
	t.Helper()
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("%s: %d groups vs %d", label, len(a.Groups), len(b.Groups))
	}
	for g, av := range a.Groups {
		bv, ok := b.Groups[g]
		if !ok {
			t.Fatalf("%s: group %q missing", label, g)
		}
		for i := range av {
			if math.Float64bits(av[i]) != math.Float64bits(bv[i]) {
				t.Fatalf("%s: group %q col %d: %v vs %v (bits differ)", label, g, i, av[i], bv[i])
			}
		}
	}
}

// The headline metamorphic property: for every aggregate kind, every
// partition split, and every worker width — including widths above the
// partition count — the parallel path produces bit-identical snapshots
// and confidence intervals, at any epoch sizing.
func TestParallelWidthsBitIdentical(t *testing.T) {
	rows := synthRows(11, 4000, 7)
	for _, parts := range []int{1, 2, 3, 5, 8} {
		topic := stream.NewTopic("t", rows, parts)
		mk := func() *Running[synthRow] {
			return NewRunning("wq", stream.NewConsumer(topic), allKindSpecs(),
				synthProcessor(), CostModel{SecsPerRow: 0.001})
		}
		ref := mk()
		drain(ref, 500, 1)
		refSnap := ref.Snapshot()
		for _, cfg := range []struct{ batch, width int }{
			{500, 2}, {500, 4}, {500, 8}, {500, parts + 5}, // degenerate width > partitions
			{137, 4}, {4000, 4}, // epoch sizing must not matter either
		} {
			q := mk()
			drain(q, cfg.batch, cfg.width)
			label := fmt.Sprintf("parts=%d batch=%d width=%d", parts, cfg.batch, cfg.width)
			snapshotsIdentical(t, label, refSnap, q.Snapshot())
			for g := range refSnap.Groups {
				for col := range refSnap.Specs {
					rlo, rhi, rok := ref.ConfidenceInterval(g, col, 1.96)
					qlo, qhi, qok := q.ConfidenceInterval(g, col, 1.96)
					if rok != qok || math.Float64bits(rlo) != math.Float64bits(qlo) ||
						math.Float64bits(rhi) != math.Float64bits(qhi) {
						t.Fatalf("%s: CI(%q,%d) = (%v,%v,%v) vs (%v,%v,%v)",
							label, g, col, qlo, qhi, qok, rlo, rhi, rok)
					}
				}
			}
		}
	}
}

// Merge must reproduce the cell a single table would hold: exactly for
// the order-free accumulators (Count/Min/Max), and to float tolerance
// for the summed ones (their addition order differs from the interleaved
// fold, which is why the parallel path fixes the partition order
// instead).
func TestMergeReproducesDirectFold(t *testing.T) {
	check := func(seed uint64, k uint8) bool {
		rows := synthRows(seed, 600, 5)
		nparts := int(k)%6 + 1
		direct := NewGroupTable(allKindSpecs())
		partials := make([]*GroupTable, nparts)
		for p := range partials {
			partials[p] = NewGroupTable(allKindSpecs())
		}
		for i := range rows {
			v := rows[i].V
			direct.Update(rows[i].Group, v, 1, v, v, v)
			partials[i%nparts].Update(rows[i].Group, v, 1, v, v, v)
		}
		merged := NewGroupTable(allKindSpecs())
		for _, p := range partials {
			merged.Merge(p)
		}
		a, b := direct.Snapshot(), merged.Snapshot()
		if len(a.Groups) != len(b.Groups) {
			return false
		}
		for g, av := range a.Groups {
			bv := b.Groups[g]
			for i, spec := range a.Specs {
				switch spec.Kind {
				case Count, Min, Max:
					if av[i] != bv[i] {
						return false
					}
				default:
					if math.Abs(av[i]-bv[i]) > 1e-9*math.Max(1, math.Abs(av[i])) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDisjointCopiesCells(t *testing.T) {
	specs := []AggSpec{{Name: "s", Kind: Sum}}
	src := NewGroupTable(specs)
	src.Update("only-in-src", 5)
	dst := NewGroupTable(specs)
	dst.Merge(src)
	src.Update("only-in-src", 7) // must not leak into dst through aliasing
	if got := dst.Snapshot().Groups["only-in-src"][0]; got != 5 {
		t.Fatalf("merged cell aliased its source: %v, want 5", got)
	}
	empty := NewGroupTable(specs)
	dst.Merge(empty)
	if got := dst.Snapshot().Groups["only-in-src"][0]; got != 5 {
		t.Fatalf("merging an empty table changed a cell: %v", got)
	}
}

func TestMergeSpecMismatchPanics(t *testing.T) {
	for _, other := range []*GroupTable{
		NewGroupTable([]AggSpec{{Name: "a", Kind: Sum}, {Name: "b", Kind: Sum}}),
		NewGroupTable([]AggSpec{{Name: "a", Kind: Max}}),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("merge with mismatched specs did not panic")
				}
			}()
			NewGroupTable([]AggSpec{{Name: "a", Kind: Sum}}).Merge(other)
		}()
	}
}

// A parallel query checkpointed mid-stream must restore to the exact
// per-partition accumulators: draining the original and the restored
// copy yields bit-identical snapshots.
func TestParallelCheckpointRoundTrip(t *testing.T) {
	rows := synthRows(23, 3000, 6)
	topic := stream.NewTopic("t", rows, 6)
	mk := func() *Running[synthRow] {
		return NewRunning("cpq", stream.NewConsumer(topic), allKindSpecs(),
			synthProcessor(), CostModel{SecsPerRow: 0.001})
	}
	q1 := mk()
	q1.ProcessBatch(1100, 4)
	cp, err := q1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	q2 := mk()
	if err := q2.Restore(cp); err != nil {
		t.Fatal(err)
	}
	snapshotsIdentical(t, "restored mid-stream", q1.Snapshot(), q2.Snapshot())
	if q1.RowsProcessed() != q2.RowsProcessed() || q1.DataProgress() != q2.DataProgress() {
		t.Fatalf("restored position: rows %d/%d progress %v/%v",
			q1.RowsProcessed(), q2.RowsProcessed(), q1.DataProgress(), q2.DataProgress())
	}
	drain(q1, 700, 8)
	drain(q2, 700, 2) // different width and epoch sizing after restore
	snapshotsIdentical(t, "drained after restore", q1.Snapshot(), q2.Snapshot())

	// A sequential-path checkpoint must not restore into a parallel query.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(cp, &raw); err != nil {
		t.Fatal(err)
	}
	delete(raw, "partials")
	raw["table"], _ = json.Marshal(NewGroupTable(allKindSpecs()))
	mangled, _ := json.Marshal(raw)
	if err := mk().Restore(mangled); err == nil {
		t.Error("parallel query restored a checkpoint without partials")
	}
}

// Processors with auxiliary state are order-sensitive and must stay on
// the single-goroutine interleaved path; re-entrant ones without aux
// state get the partitioned path. Sequential opts out explicitly.
func TestPathSelection(t *testing.T) {
	topic := stream.NewTopic("t", synthRows(1, 100, 3), 4)
	stateless := NewRunning("a", stream.NewConsumer(topic), allKindSpecs(),
		synthProcessor(), CostModel{})
	if stateless.partials == nil || stateless.gt != nil {
		t.Error("stateless processor not on the parallel path")
	}
	withAux := synthProcessor()
	withAux.SaveAux = func() (json.RawMessage, error) { return json.Marshal(0) }
	withAux.LoadAux = func(json.RawMessage) error { return nil }
	aux := NewRunning("b", stream.NewConsumer(topic), allKindSpecs(), withAux, CostModel{})
	if aux.partials != nil || aux.gt == nil {
		t.Error("aux-state processor not on the sequential path")
	}
	optOut := synthProcessor()
	optOut.Sequential = true
	seq := NewRunning("c", stream.NewConsumer(topic), allKindSpecs(), optOut, CostModel{})
	if seq.partials != nil || seq.gt == nil {
		t.Error("Sequential processor not on the sequential path")
	}
}

// SetMaxDataWidth bounds physical fan-out without changing results or
// the virtual cost accounting.
func TestMaxDataWidthCapsWithoutChangingResults(t *testing.T) {
	rows := synthRows(3, 2000, 5)
	topic := stream.NewTopic("t", rows, 8)
	mk := func() *Running[synthRow] {
		return NewRunning("cap", stream.NewConsumer(topic), allKindSpecs(),
			synthProcessor(), CostModel{SecsPerRow: 0.001, FixedPerBatch: 0.01})
	}
	capped, uncapped := mk(), mk()
	capped.SetMaxDataWidth(2)
	n1, c1 := capped.ProcessBatch(1000, 8)
	n2, c2 := uncapped.ProcessBatch(1000, 8)
	if n1 != n2 || c1 != c2 {
		t.Fatalf("cap changed accounting: rows %d/%d cost %v/%v", n1, n2, c1, c2)
	}
	snapshotsIdentical(t, "capped vs uncapped", capped.Snapshot(), uncapped.Snapshot())
}

// A group whose column has seen no finite value keeps the ±Inf extrema
// sentinels; those must survive the checkpoint round trip (encoding/json
// cannot represent them as numbers, so the cell encodes them itself).
func TestCheckpointPreservesNonFiniteSentinels(t *testing.T) {
	gt := NewGroupTable([]AggSpec{{Name: "s", Kind: Sum}, {Name: "m", Kind: Min}})
	gt.Update("g", math.NaN(), math.NaN()) // group exists, no finite values
	data, err := json.Marshal(gt)
	if err != nil {
		t.Fatalf("marshal with ±Inf sentinels: %v", err)
	}
	back := &GroupTable{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	// The restored sentinels must still lose to any finite update.
	back.Update("g", 4, 4)
	vals := back.Snapshot().Groups["g"]
	if vals[0] != 4 || vals[1] != 4 {
		t.Fatalf("post-restore update got %v, want [4 4]", vals)
	}
}
