package core

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"rotary/internal/diskio"
	"rotary/internal/faults"
	"rotary/internal/obs"
)

// Typed checkpoint errors. Callers branch on these with errors.Is to pick
// a recovery strategy: a missing or corrupt checkpoint means the job's
// persisted state is lost (restart from scratch), a transient error that
// survives the bounded retries means the same, anything else is a real
// environmental failure that should abort the run.
var (
	// ErrNotFound reports that no checkpoint exists for the id.
	ErrNotFound = errors.New("core: checkpoint not found")
	// ErrCorrupt reports that the persisted frame failed validation
	// (magic, version, length, or CRC32). The payload is never handed to
	// a deserializer in this case.
	ErrCorrupt = errors.New("core: checkpoint corrupt")
	// ErrTransient reports a retryable I/O failure that persisted through
	// the store's bounded retries.
	ErrTransient = errors.New("core: transient checkpoint I/O error")
)

// Checkpoint wire format: a fixed header followed by the payload.
//
//	offset size  field
//	0      4     magic "RCKP"
//	4      1     format version (1)
//	5      3     reserved (zero)
//	8      4     payload length, little-endian
//	12     4     CRC32 (IEEE) of the payload, little-endian
//	16     …     payload
//
// The header lets Load reject torn, truncated, or bit-flipped files by
// checksum before any byte of the payload reaches a deserializer.
const (
	ckptMagic     = "RCKP"
	ckptVersion   = 1
	ckptHeaderLen = 16
)

// encodeCheckpointFrame wraps a payload in the checksummed header.
func encodeCheckpointFrame(payload []byte) []byte {
	frame := make([]byte, ckptHeaderLen+len(payload))
	copy(frame, ckptMagic)
	frame[4] = ckptVersion
	binary.LittleEndian.PutUint32(frame[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[12:16], crc32.ChecksumIEEE(payload))
	copy(frame[ckptHeaderLen:], payload)
	return frame
}

// decodeCheckpointFrame validates a frame and returns its payload, or an
// error wrapping ErrCorrupt. It never returns payload bytes that failed
// the checksum.
func decodeCheckpointFrame(frame []byte) ([]byte, error) {
	if len(frame) < ckptHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte file shorter than header", ErrCorrupt, len(frame))
	}
	if string(frame[:4]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, frame[:4])
	}
	if frame[4] != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, frame[4])
	}
	n := binary.LittleEndian.Uint32(frame[8:12])
	if int(n) != len(frame)-ckptHeaderLen {
		return nil, fmt.Errorf("%w: header claims %d payload bytes, file has %d", ErrCorrupt, n, len(frame)-ckptHeaderLen)
	}
	payload := frame[ckptHeaderLen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(frame[12:16]); got != want {
		return nil, fmt.Errorf("%w: CRC32 mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	return payload, nil
}

// AtomicWriteFile publishes data at path crash-safely: the bytes are
// written to a same-directory temp file, fsynced, renamed over the final
// path, and the directory is synced best-effort so the rename itself is
// durable. A crash at any point leaves either the old file or the new one
// — never a torn mix. The checkpoint store and the serve journal's
// compaction both publish through it.
func AtomicWriteFile(path string, data []byte) error {
	return AtomicWriteFileIO(diskio.OS{}, path, data)
}

// AtomicWriteFileIO is AtomicWriteFile over a pluggable disk layer, so
// chaos runs can fail any step of the protocol: a failed rename or a
// failed cleanup remove leaves the temp file orphaned on the real
// disk, which is exactly what the open-time sweeps exist to reclaim.
func AtomicWriteFileIO(dio diskio.IO, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := dio.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = dio.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = dio.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = dio.Remove(tmp)
		return err
	}
	if err := dio.Rename(tmp, path); err != nil {
		_ = dio.Remove(tmp)
		return err
	}
	_ = dio.SyncDir(filepath.Dir(path))
	return nil
}

// StoreHealth counts the failure-path activity of a CheckpointStore: the
// chaos suite and the recovery report read it.
type StoreHealth struct {
	// Retries counts transient I/O attempts that were retried.
	Retries int
	// TransientFailures counts operations that exhausted their retries
	// and surfaced ErrTransient.
	TransientFailures int
	// CorruptDetected counts loads rejected by frame validation.
	CorruptDetected int
	// SlowIOs counts injected slow-storage events.
	SlowIOs int
	// Swept counts stale checkpoint files removed at startup.
	Swept int
}

// CheckpointStore persists the state of paused (deferred) jobs, realizing
// §VI's implementation choice: "When a job is paused, its intermediate
// states and results should be persisted either in memory or disk so that
// it can be resumed. Persisting AQP jobs in memory is more efficient …
// but may quickly saturate the memory … Therefore, we checkpoint the AQP
// jobs in disks."
//
// The store implements both sides of that trade-off as a two-tier
// materialization policy: up to MemorySlots recently paused jobs stay
// resident (resuming them is nearly free), older checkpoints spill to
// disk (resuming replays the file and pays the I/O cost the executor
// charges in virtual time). MemorySlots = 0 is the paper's disk-only
// configuration.
//
// Disk writes are crash-safe: each frame is written to a temp file,
// fsynced, and renamed over the final path, so a torn write can never
// shadow a previously valid checkpoint, and every frame carries a CRC32
// header that Load verifies before any payload byte is deserialized.
type CheckpointStore struct {
	mu  sync.Mutex
	dir string
	dio diskio.IO

	// retain, when set, exempts checkpoint ids from the startup sweep (and
	// from Close's cleanup): a durable arbiter's journal references
	// checkpoints across process restarts, and sweeping those would turn
	// every daemon restart into a from-scratch replay.
	retain func(id string) bool

	memorySlots int
	memory      map[string][]byte
	lru         *list.List               // front = most recent
	lruIdx      map[string]*list.Element // id -> element (value: id)

	// injector, when set, deals deterministic I/O faults; maxRetries and
	// retryBackoffSecs bound the recovery from transient ones. The
	// backoff is charged in virtual time: it accrues to penaltySecs,
	// which the executor drains into the affected job's epoch cost.
	injector         *faults.Injector
	maxRetries       int
	retryBackoffSecs float64
	penaltySecs      float64

	memHits, diskHits, writes int
	diskBytes                 int64
	health                    StoreHealth
	closed                    bool
	met                       *storeMetrics
}

// NewCheckpointStore creates a store spilling to dir, keeping up to
// memorySlots checkpoints resident. The directory is created if missing,
// and stale checkpoint files left behind by a previous (possibly crashed)
// run are swept away so completed workloads never leak disk across runs.
func NewCheckpointStore(dir string, memorySlots int) (*CheckpointStore, error) {
	return NewCheckpointStoreRetaining(dir, memorySlots, nil)
}

// NewCheckpointStoreRetaining creates a store whose startup sweep (and
// Close-time cleanup) spares checkpoints the retain predicate claims: the
// durable serving mode passes the set of checkpoint ids its journal still
// references for non-terminal jobs, so a daemon restart can reattach each
// recovered job to its latest persisted state instead of replaying from
// scratch. A nil predicate retains nothing (the one-run scratch semantics
// of NewCheckpointStore).
func NewCheckpointStoreRetaining(dir string, memorySlots int, retain func(id string) bool) (*CheckpointStore, error) {
	return NewCheckpointStoreIO(dir, memorySlots, retain, nil)
}

// NewCheckpointStoreIO is NewCheckpointStoreRetaining over a pluggable
// disk layer (nil means the real disk): every write, rename, remove,
// and directory sync the store issues goes through dio, so a seeded
// fault injector sees each one. The startup sweep also runs through
// dio — a faulty disk may refuse to release an orphan, in which case
// the next open tries again.
func NewCheckpointStoreIO(dir string, memorySlots int, retain func(id string) bool, dio diskio.IO) (*CheckpointStore, error) {
	if dio == nil {
		dio = diskio.OS{}
	}
	if err := dio.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	if memorySlots < 0 {
		memorySlots = 0
	}
	s := &CheckpointStore{
		dir:              dir,
		dio:              dio,
		retain:           retain,
		memorySlots:      memorySlots,
		memory:           make(map[string][]byte),
		lru:              list.New(),
		lruIdx:           make(map[string]*list.Element),
		maxRetries:       3,
		retryBackoffSecs: 1.0,
		met:              newStoreMetrics(nil),
	}
	s.health.Swept = s.sweep()
	s.met.swept.Add(int64(s.health.Swept))
	return s, nil
}

// SetObs moves the store's metrics onto reg (nil restores the process
// default registry) and replays the startup sweep count there. Call it
// before the store sees traffic — earlier activity stays on the previous
// registry.
func (s *CheckpointStore) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = newStoreMetrics(reg)
	s.met.swept.Add(int64(s.health.Swept))
}

// sweep removes leftover *.ckpt and *.ckpt.tmp files and reports how many
// it deleted. Checkpoints are scratch state scoped to one run; anything
// present at store creation is an orphan — except checkpoints the retain
// predicate claims, which a durable journal still references for jobs a
// restarted daemon will reattach. Torn temp files are always swept: the
// atomic-write protocol means a .ckpt.tmp never holds the only copy of a
// valid checkpoint.
func (s *CheckpointStore) sweep() int {
	entries, err := s.dio.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if id, ok := strings.CutSuffix(name, ".ckpt"); ok && s.retain != nil && s.retain(id) {
			continue
		} else if !ok && !strings.HasSuffix(name, ".ckpt.tmp") {
			continue
		}
		if s.dio.Remove(filepath.Join(s.dir, name)) == nil {
			n++
		}
	}
	return n
}

// SetFaults arms the store with a deterministic fault injector (nil
// disarms it). Intended for chaos runs; production stores leave it unset.
func (s *CheckpointStore) SetFaults(in *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.injector = in
}

// SetRetryPolicy overrides the bounded-retry parameters for transient
// I/O errors: up to maxRetries retries, with exponential virtual-time
// backoff starting at backoffSecs.
func (s *CheckpointStore) SetRetryPolicy(maxRetries int, backoffSecs float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxRetries >= 0 {
		s.maxRetries = maxRetries
	}
	if backoffSecs >= 0 {
		s.retryBackoffSecs = backoffSecs
	}
}

func (s *CheckpointStore) path(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}

// Save persists a job's checkpoint. The newest checkpoints stay in the
// memory tier; the eviction spills to disk.
func (s *CheckpointStore) Save(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: save checkpoint %s: store closed", id)
	}
	s.writes++
	s.met.writes.Inc()
	if s.memorySlots > 0 {
		if el, ok := s.lruIdx[id]; ok {
			s.lru.MoveToFront(el)
			s.memory[id] = data
			return nil
		}
		s.lruIdx[id] = s.lru.PushFront(id)
		s.memory[id] = data
		if s.lru.Len() > s.memorySlots {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			evicted := oldest.Value.(string)
			delete(s.lruIdx, evicted)
			spill := s.memory[evicted]
			delete(s.memory, evicted)
			if err := s.writeFile(evicted, spill); err != nil {
				return err
			}
		}
		return nil
	}
	return s.writeFile(id, data)
}

// writeFile frames the payload and writes it atomically: temp file in the
// same directory, fsync, rename. Injected transient faults are retried
// with exponential backoff charged in virtual time; injected corruption
// flips a payload byte after the CRC is computed, so the damage is
// carried to disk undetected and caught by Load's checksum — exactly the
// failure mode a real bit-rot or torn DMA produces.
func (s *CheckpointStore) writeFile(id string, data []byte) error {
	frame := encodeCheckpointFrame(data)
	for attempt := 0; ; attempt++ {
		switch s.injector.WriteFault() {
		case faults.Transient:
			if attempt < s.maxRetries {
				s.health.Retries++
				s.met.retries.Inc()
				s.penaltySecs += s.retryBackoffSecs * float64(int(1)<<attempt)
				continue
			}
			s.health.TransientFailures++
			s.met.transient.Inc()
			return fmt.Errorf("core: write checkpoint %s: %w", id, ErrTransient)
		case faults.Corrupt:
			// Flip one payload byte in a copy; the header CRC was computed
			// over the clean payload, so Load will reject this frame.
			frame = append([]byte(nil), frame...)
			frame[ckptHeaderLen+len(data)/2] ^= 0xFF
		case faults.Slow:
			s.penaltySecs += s.injector.SlowDelaySecs()
		}
		break
	}

	// Real (or disk-layer-injected) I/O failures get the same bounded
	// retries as injected transients, then surface as ErrTransient —
	// the typed error the executor answers with a scratch restart. An
	// ENOSPC blip therefore costs the affected job a replay, not the
	// whole run: the atomic-write protocol guarantees the previous
	// checkpoint (if any) is still intact under the final path.
	ioStart := time.Now()
	for attempt := 0; ; attempt++ {
		err := AtomicWriteFileIO(s.dio, s.path(id), frame)
		if err == nil {
			break
		}
		if attempt < s.maxRetries {
			s.health.Retries++
			s.met.retries.Inc()
			s.penaltySecs += s.retryBackoffSecs * float64(int(1)<<attempt)
			continue
		}
		s.health.TransientFailures++
		s.met.transient.Inc()
		return fmt.Errorf("core: write checkpoint %s: %w (%v)", id, ErrTransient, err)
	}
	s.diskBytes += int64(len(frame))
	s.met.frameBytes.Observe(float64(len(frame)))
	s.met.writeLatency.Observe(time.Since(ioStart).Seconds())
	return nil
}

// Load retrieves a checkpoint, reporting whether it was served from the
// memory tier (fromMemory), which the executor translates into a cheap
// resume instead of a disk replay. A missing file returns ErrNotFound; a
// frame that fails validation returns ErrCorrupt without ever exposing
// the payload; a transient fault that survives the bounded retries
// returns ErrTransient.
func (s *CheckpointStore) Load(id string) (data []byte, fromMemory bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, fmt.Errorf("core: load checkpoint %s: store closed", id)
	}
	if d, ok := s.memory[id]; ok {
		s.memHits++
		s.met.memHits.Inc()
		s.lru.MoveToFront(s.lruIdx[id])
		return d, true, nil
	}
	for attempt := 0; ; attempt++ {
		switch s.injector.ReadFault() {
		case faults.Transient:
			if attempt < s.maxRetries {
				s.health.Retries++
				s.met.retries.Inc()
				s.penaltySecs += s.retryBackoffSecs * float64(int(1)<<attempt)
				continue
			}
			s.health.TransientFailures++
			s.met.transient.Inc()
			return nil, false, fmt.Errorf("core: load checkpoint %s: %w", id, ErrTransient)
		case faults.Slow:
			s.penaltySecs += s.injector.SlowDelaySecs()
		}
		break
	}
	ioStart := time.Now()
	frame, err := s.dio.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, fmt.Errorf("core: load checkpoint %s: %w", id, ErrNotFound)
		}
		return nil, false, fmt.Errorf("core: load checkpoint %s: %w", id, err)
	}
	s.met.readLatency.Observe(time.Since(ioStart).Seconds())
	payload, err := decodeCheckpointFrame(frame)
	if err != nil {
		s.health.CorruptDetected++
		s.met.corrupt.Inc()
		return nil, false, fmt.Errorf("core: load checkpoint %s: %w", id, err)
	}
	s.diskHits++
	s.met.diskHits.Inc()
	return payload, false, nil
}

// Export reads a checkpoint as a validated CRC-framed blob, ready to be
// Imported into another store's namespace — the transfer primitive behind
// checkpoint-carried job migration between arbiter shards. A checkpoint
// still resident in the memory tier is framed on the fly, so the export is
// durable-equivalent regardless of which tier held it. The source copy is
// left in place; the caller removes it (via the executor's Detach) once
// the migration commits.
func (s *CheckpointStore) Export(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("core: export checkpoint %s: store closed", id)
	}
	if d, ok := s.memory[id]; ok {
		return encodeCheckpointFrame(d), nil
	}
	frame, err := s.dio.ReadFile(s.path(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("core: export checkpoint %s: %w", id, ErrNotFound)
		}
		return nil, fmt.Errorf("core: export checkpoint %s: %w", id, err)
	}
	if _, err := decodeCheckpointFrame(frame); err != nil {
		s.health.CorruptDetected++
		s.met.corrupt.Inc()
		return nil, fmt.Errorf("core: export checkpoint %s: %w", id, err)
	}
	return frame, nil
}

// Import publishes an exported frame under this store's namespace,
// validating the frame before any byte lands on disk. The write goes
// straight to the disk tier through the atomic-write protocol: a migrated
// job's reattach target must be durable before the receiving shard
// journals the migration as committed.
func (s *CheckpointStore) Import(id string, frame []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("core: import checkpoint %s: store closed", id)
	}
	if _, err := decodeCheckpointFrame(frame); err != nil {
		return fmt.Errorf("core: import checkpoint %s: %w", id, err)
	}
	if err := AtomicWriteFileIO(s.dio, s.path(id), frame); err != nil {
		return fmt.Errorf("core: import checkpoint %s: %w", id, err)
	}
	s.diskBytes += int64(len(frame))
	return nil
}

// TakePenaltySecs drains the virtual-time cost accrued by retry backoffs
// and slow-storage events since the last drain. The executor charges it
// to the job whose I/O incurred it.
func (s *CheckpointStore) TakePenaltySecs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.penaltySecs
	s.penaltySecs = 0
	return p
}

// Delete removes a job's checkpoint from both tiers. Deleting an id with
// no checkpoint is a no-op.
func (s *CheckpointStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(id)
}

func (s *CheckpointStore) deleteLocked(id string) error {
	if el, ok := s.lruIdx[id]; ok {
		s.lru.Remove(el)
		delete(s.lruIdx, id)
		delete(s.memory, id)
	}
	if err := s.dio.Remove(s.path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("core: delete checkpoint %s: %w", id, err)
	}
	return nil
}

// Remove deletes a terminal job's checkpoint from both tiers, ignoring
// I/O errors (kept for callers that cannot propagate them).
func (s *CheckpointStore) Remove(id string) {
	_ = s.Delete(id)
}

// Close releases the store: the memory tier is dropped and every
// remaining on-disk checkpoint is deleted (checkpoints are scratch state
// scoped to one run — terminal jobs already removed theirs; whatever is
// left belongs to jobs that will never resume). Checkpoints claimed by the
// retain predicate survive: a journal-referenced job may still reattach to
// them after a restart. Note the memory tier is NOT flushed to disk first;
// a durable configuration should use MemorySlots = 0 so every checkpoint
// reaches disk at save time. Operations after Close fail. Close is
// idempotent.
func (s *CheckpointStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for id := range s.memory {
		delete(s.memory, id)
	}
	s.lru.Init()
	s.lruIdx = make(map[string]*list.Element)
	entries, err := s.dio.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("core: close checkpoint store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if id, ok := strings.CutSuffix(name, ".ckpt"); ok && s.retain != nil && s.retain(id) {
			continue
		} else if !ok && !strings.HasSuffix(name, ".ckpt.tmp") {
			continue
		}
		if err := s.dio.Remove(filepath.Join(s.dir, name)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: close checkpoint store: %w", err)
		}
	}
	return firstErr
}

// Stats reports the store's activity: checkpoint writes, memory-tier and
// disk-tier resumes, and total bytes spilled to disk.
func (s *CheckpointStore) Stats() (writes, memHits, diskHits int, diskBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.memHits, s.diskHits, s.diskBytes
}

// Health reports the store's failure-path counters.
func (s *CheckpointStore) Health() StoreHealth {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}
