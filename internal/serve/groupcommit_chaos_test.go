// Group-commit write-ahead chaos: concurrent clients hammer a durable
// server whose driver batches their submits under one fsync per group,
// and the daemon is SIGKILLed mid-traffic. The invariant under test is
// the write-ahead contract as restated for group commit: a reply is
// released only after the fsync covering its records returned, so no
// client may ever hold an OK submit reply whose job the restarted
// incarnation does not remember. The opposite direction — journaled but
// never acked — is allowed and expected (the kill can land between the
// sync and the reply write); req_id dedupe exists for exactly that
// window.
package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rotary/internal/sim"
)

func TestGroupCommitKillRestartChaos(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := sim.NewRand(seed ^ 0x6c0de)
			killAfter := time.Duration(2+rng.IntN(30)) * time.Millisecond

			h := newDurableHarness(t)
			h.start(t)

			const workers = 8
			var mu sync.Mutex
			acked := make(map[string]string) // job id -> req_id
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := NewClient(ClientConfig{
						Socket:   h.socket,
						Attempts: 1, // fail fast once the daemon dies
						Backoff:  time.Millisecond,
					})
					if err != nil {
						t.Errorf("worker %d: NewClient: %v", w, err)
						return
					}
					defer cl.Close()
					for i := 0; ; i++ {
						reqID := fmt.Sprintf("req-s%d-w%d-%d", seed, w, i)
						resp, err := cl.Do(Message{Op: "submit", ReqID: reqID,
							Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
						if err != nil || !resp.OK {
							return // the kill (or its drain shadow) ended this worker
						}
						mu.Lock()
						acked[resp.ID] = reqID
						mu.Unlock()
					}
				}(w)
			}

			time.Sleep(killAfter)
			h.kill(t)
			wg.Wait()

			if len(acked) == 0 {
				t.Skipf("kill landed before any submit was acked (killAfter=%v)", killAfter)
			}

			// Restart over the same state dir: every acked reply's job must
			// have survived in the journal — the fsync its reply waited on.
			h.start(t)
			c := dial(t, h.socket)
			for id, reqID := range acked {
				st := c.call(t, Message{Op: "status", ID: id})
				if !st.OK {
					t.Fatalf("seed %d: job %s was acked before the kill but the restarted journal does not know it: %+v",
						seed, id, st)
				}
				// The req_id dedupe index must have recovered too: a client
				// retrying its acked submit gets the same job back, not a
				// duplicate.
				re := c.call(t, Message{Op: "submit", ReqID: reqID,
					Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
				if !re.OK || re.Code != CodeDuplicateRequest || re.ID != id {
					t.Fatalf("seed %d: resubmit of acked req %s: %+v, want dedupe to job %s", seed, reqID, re, id)
				}
			}
			if r := c.call(t, Message{Op: "drain"}); !r.OK {
				t.Fatalf("seed %d: drain after recovery: %+v", seed, r)
			}
			h.wg.Wait()
			t.Logf("seed %d: %d acked submits all recovered (killAfter=%v)", seed, len(acked), killAfter)
		})
	}
}
