package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/sim"
)

// DLTProgressAt computes the §V-B attainment-progress metric of one job
// at virtual time t, per its completion-criteria kind:
//
//   - accuracy-oriented: current accuracy / target accuracy;
//   - convergence-oriented: current epoch / convergence-line when the job
//     eventually converged, current epoch / max epochs otherwise
//     (retrospective, exactly as §V-B defines it);
//   - runtime-oriented: current epoch / target epochs.
//
// Progress is clamped to [0, 1]; a job that terminated attained before t
// reports 1.
func DLTProgressAt(j *core.DLTJob, t sim.Time) float64 {
	if j.Status() == core.StatusAttainedStop && j.EndTime() <= t {
		return 1
	}
	// Latest observation at or before t.
	var epoch int
	var acc float64
	seen := false
	for _, obs := range j.EpochLog() {
		if obs.At > t {
			break
		}
		epoch = obs.Epoch
		acc = obs.TrueAcc
		seen = true
	}
	if !seen {
		return 0
	}
	clamp := func(p float64) float64 {
		if p > 1 {
			return 1
		}
		if p < 0 {
			return 0
		}
		return p
	}
	switch j.Criteria().Kind {
	case criteria.Accuracy:
		thr := j.Criteria().Threshold
		if thr <= 0 {
			return 0
		}
		return clamp(acc / thr)
	case criteria.Convergence:
		if c := j.ConvergedAtEpoch(); c > 0 {
			return clamp(float64(epoch) / float64(c))
		}
		return clamp(float64(epoch) / float64(j.MaxEpochs()))
	case criteria.Runtime:
		return clamp(float64(epoch) / float64(j.MaxEpochs()))
	default:
		return 0
	}
}

// Violin is the five-number summary (plus mean) behind one violin of
// Fig. 10.
type Violin struct {
	Min, P25, P50, P75, Max, Mean float64
	N                             int
}

// Summarize computes a Violin over values.
func Summarize(values []float64) Violin {
	if len(values) == 0 {
		return Violin{}
	}
	vs := make([]float64, len(values))
	copy(vs, values)
	sort.Float64s(vs)
	q := func(p float64) float64 {
		idx := p * float64(len(vs)-1)
		lo := int(idx)
		hi := lo + 1
		if hi >= len(vs) {
			return vs[lo]
		}
		frac := idx - float64(lo)
		return vs[lo]*(1-frac) + vs[hi]*frac
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return Violin{
		Min: vs[0], P25: q(0.25), P50: q(0.50), P75: q(0.75), Max: vs[len(vs)-1],
		Mean: sum / float64(len(vs)), N: len(vs),
	}
}

// DLTSnapshot is a workload's progress distribution at one time.
type DLTSnapshot struct {
	At       sim.Time
	Progress Violin
	Attained int
}

// SnapshotDLT computes Fig. 10's per-interval snapshots: at each time,
// the distribution of every job's attainment progress plus the count of
// jobs that met their completion criteria.
func SnapshotDLT(jobs []*core.DLTJob, times []sim.Time) []DLTSnapshot {
	out := make([]DLTSnapshot, 0, len(times))
	for _, t := range times {
		vals := make([]float64, 0, len(jobs))
		attained := 0
		for _, j := range jobs {
			vals = append(vals, DLTProgressAt(j, t))
			if j.Status() == core.StatusAttainedStop && j.EndTime() <= t {
				attained++
			}
		}
		out = append(out, DLTSnapshot{At: t, Progress: Summarize(vals), Attained: attained})
	}
	return out
}

// RenderDLTSnapshots renders one policy's Fig. 10 series.
func RenderDLTSnapshots(policy string, snaps []DLTSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s\n", policy)
	fmt.Fprintf(&b, "%10s %8s %6s %6s %6s %6s %6s %6s\n",
		"t(min)", "attained", "min", "p25", "p50", "p75", "max", "mean")
	for _, s := range snaps {
		v := s.Progress
		fmt.Fprintf(&b, "%10.0f %8d %6.2f %6.2f %6.2f %6.2f %6.2f %6.2f\n",
			s.At.Minutes(), s.Attained, v.Min, v.P25, v.P50, v.P75, v.Max, v.Mean)
	}
	return b.String()
}

// RenderGantt renders the Fig. 11 job-placement chart: one row per
// device, one cell per time slot showing the job occupying it ('.' for
// idle, '#' suffix marks the slot in which a job met its criteria).
func RenderGantt(jobs []*core.DLTJob, devices int, horizon sim.Time, slots int) string {
	if slots <= 0 {
		slots = 60
	}
	// A zero/negative/NaN horizon would make slotLen 0 and every slot
	// index int(±Inf) — auto-fit to the latest placement instead, falling
	// back to one second when no job ever ran.
	if h := horizon.Seconds(); h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		horizon = sim.Time(1)
		for _, j := range jobs {
			for _, p := range j.Placements() {
				if p.End > horizon {
					horizon = p.End
				}
			}
		}
	}
	slotLen := horizon.Seconds() / float64(slots)
	grid := make([][]string, devices)
	for d := range grid {
		grid[d] = make([]string, slots)
		for s := range grid[d] {
			grid[d][s] = " ."
		}
	}
	label := func(j *core.DLTJob, idx int) string { return fmt.Sprintf("%2d", idx) }
	for idx, j := range jobs {
		for _, p := range j.Placements() {
			if p.Device < 0 || p.Device >= devices {
				continue
			}
			s0 := int(p.Start.Seconds() / slotLen)
			s1 := int(p.End.Seconds() / slotLen)
			for s := s0; s <= s1 && s < slots; s++ {
				grid[p.Device][s] = label(j, idx)
			}
		}
	}
	var b strings.Builder
	for d := 0; d < devices; d++ {
		fmt.Fprintf(&b, "gpu%-2d |", d)
		for s := 0; s < slots; s++ {
			b.WriteString(grid[d][s])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%6s 0%s%.0fs\n", "", strings.Repeat(" ", 2*slots-6), horizon.Seconds())
	for idx, j := range jobs {
		fmt.Fprintf(&b, "  job %2d = %-28s %-10s end=%7.0fs epochs=%d\n",
			idx, j.ID(), j.Status(), j.EndTime().Seconds(), j.Epochs())
	}
	return b.String()
}
