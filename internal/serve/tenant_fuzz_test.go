package serve

import (
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// FuzzTenantRequest throws adversarial tenant ids at the serve
// request surface: control characters, oversized ids, exotic unicode,
// quota-gated tenants, and (via the raw second argument) invalid UTF-8
// that the JSON layer can never deliver. Whatever the input, the server
// must answer with a typed Response, never panic, never admit a tenant
// id ValidateTenant rejects, and never echo one tenant's id in another
// submission's reply.
func FuzzTenantRequest(f *testing.F) {
	seeds := []struct {
		line   string
		tenant string
	}{
		{`{"op":"submit","tenant":"alpha","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`, "alpha"},
		{`{"op":"submit","tenant":"","statement":"q3 ACC MIN 55% WITHIN 900 SECONDS"}`, ""},
		{`{"op":"submit","tenant":"badctl","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`, "x\x01y"},
		{`{"op":"submit","tenant":"` + strings.Repeat("t", 300) + `","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`, strings.Repeat("t", 300)},
		{`{"op":"submit","tenant":"日本語テナント","statement":"q5 ACC MIN 70% WITHIN 900 SECONDS"}`, "日本語"},
		{`{"op":"submit","tenant":"default","statement":"q6 ACC MIN 50% WITHIN 900 SECONDS"}`, "default"},
		{`{"op":"status","tenant":"alpha","id":"nope"}`, "\xff\xfe"},
		{`{"op":"stats","tenant":""}`, "\x7f"},
		{`{"op":"submit","tenant":"quoted\"label\\injection","statement":"q1 ACC MIN 60% WITHIN 900 SECONDS"}`, `a"b\c`},
		{`{"op":"advance","seconds":5,"tenant":"whatever"}`, string([]byte{0xc3, 0x28})},
	}
	for _, s := range seeds {
		f.Add([]byte(s.line), []byte(s.tenant))
	}

	// One live server per fuzz process: a real executor with a tenant
	// quota table and fair-share arbitration behind it, driven through
	// the same handle() the serve loop uses. State accumulates across
	// iterations — exactly the long-lived-daemon surface we care about.
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	table := admission.TenantTable{
		Default: admission.TenantQuota{RatePerSec: 2, Burst: 4, MaxActive: 8, MaxPending: 8},
		Tenants: map[string]admission.TenantQuota{"alpha": {Weight: 3}},
	}
	cfg.Admission = admission.NewController(admission.Config{Tenants: table, Obs: reg})
	exec := core.NewAQPExecutor(cfg, core.NewFairShareAQP(baselines.RoundRobinAQP{}, table.Weights()), nil)
	srv, err := New(Config{Socket: "ignored-never-served.sock", Pace: 0, Obs: reg}, exec, cat)
	if err != nil {
		f.Fatalf("New: %v", err)
	}

	f.Fuzz(func(t *testing.T, line, rawTenant []byte) {
		// ValidateTenant itself must be total over arbitrary bytes — this
		// is the only path that can see invalid UTF-8, since the JSON
		// layer replaces it with U+FFFD before a Message exists.
		if err := ValidateTenant(string(rawTenant)); err == nil {
			if !utf8.ValidString(string(rawTenant)) || len(rawTenant) > maxTenantBytes {
				t.Fatalf("ValidateTenant accepted %q", rawTenant)
			}
		}

		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			// serveConn answers bad-request for unparsable lines; there is
			// no tenant surface left to probe.
			return
		}
		resp := srv.handle(m)
		if !resp.OK && resp.Code == "" {
			t.Fatalf("untyped failure for %q: %+v", line, resp)
		}
		if m.Op == "submit" {
			if resp.Tenant != "" && resp.Tenant != m.Tenant {
				t.Fatalf("cross-tenant leak: submitted %q, reply echoes %q", m.Tenant, resp.Tenant)
			}
			if ValidateTenant(m.Tenant) != nil && resp.OK {
				t.Fatalf("invalid tenant id %q admitted: %+v", m.Tenant, resp)
			}
		}
		// The server must stay responsive whatever the request did.
		if again := srv.handle(Message{Op: "stats"}); !again.OK && again.Code == "" {
			t.Fatalf("server wedged after %q: %+v", line, again)
		}
	})
}
