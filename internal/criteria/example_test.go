package criteria_test

import (
	"fmt"

	"rotary/internal/criteria"
)

// The three Fig. 4 clause templates parse off the end of any command.
func ExampleParse() {
	inputs := []string{
		"SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='CUST1' ACC MIN 95% WITHIN 3600 SECONDS",
		"TRAIN RESNET-50 ON CIFAR10 ACC DELTA 0.001 WITHIN 30 EPOCHS",
		"TRAIN MOBILENET ON CIFAR10 FOR 2 HOURS",
	}
	for _, in := range inputs {
		cmd, crit, err := criteria.Parse(in)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Printf("%-14s %-50s %v\n", crit.Kind, cmd, crit)
	}
	// Output:
	// accuracy       SELECT AVG(PROFIT) FROM O WHERE CUSTOMERID='CUST1' ACC MIN 95% WITHIN 3600 seconds
	// convergence    TRAIN RESNET-50 ON CIFAR10                         ACC DELTA 0.001 WITHIN 30 epochs
	// runtime        TRAIN MOBILENET ON CIFAR10                         FOR 2 hours
}

// Expired checks a criterion's bound against a job's elapsed time and
// epoch count.
func ExampleCriteria_Expired() {
	crit, _ := criteria.NewAccuracy("ACC", 0.9, criteria.Deadline{Value: 10, Unit: criteria.Epochs})
	fmt.Println(crit.Expired(1e6, 9), crit.Expired(0, 10))
	// Output: false true
}
