package core

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// CheckpointStore persists the state of paused (deferred) jobs, realizing
// §VI's implementation choice: "When a job is paused, its intermediate
// states and results should be persisted either in memory or disk so that
// it can be resumed. Persisting AQP jobs in memory is more efficient …
// but may quickly saturate the memory … Therefore, we checkpoint the AQP
// jobs in disks."
//
// The store implements both sides of that trade-off as a two-tier
// materialization policy: up to MemorySlots recently paused jobs stay
// resident (resuming them is nearly free), older checkpoints spill to
// disk (resuming replays the file and pays the I/O cost the executor
// charges in virtual time). MemorySlots = 0 is the paper's disk-only
// configuration.
type CheckpointStore struct {
	mu  sync.Mutex
	dir string

	memorySlots int
	memory      map[string][]byte
	lru         *list.List               // front = most recent
	lruIdx      map[string]*list.Element // id -> element (value: id)

	memHits, diskHits, writes int
	diskBytes                 int64
}

// NewCheckpointStore creates a store spilling to dir, keeping up to
// memorySlots checkpoints resident. The directory is created if missing.
func NewCheckpointStore(dir string, memorySlots int) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	if memorySlots < 0 {
		memorySlots = 0
	}
	return &CheckpointStore{
		dir:         dir,
		memorySlots: memorySlots,
		memory:      make(map[string][]byte),
		lru:         list.New(),
		lruIdx:      make(map[string]*list.Element),
	}, nil
}

func (s *CheckpointStore) path(id string) string {
	return filepath.Join(s.dir, id+".ckpt")
}

// Save persists a job's checkpoint. The newest checkpoints stay in the
// memory tier; the eviction spills to disk.
func (s *CheckpointStore) Save(id string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writes++
	if s.memorySlots > 0 {
		if el, ok := s.lruIdx[id]; ok {
			s.lru.MoveToFront(el)
			s.memory[id] = data
			return nil
		}
		s.lruIdx[id] = s.lru.PushFront(id)
		s.memory[id] = data
		if s.lru.Len() > s.memorySlots {
			oldest := s.lru.Back()
			s.lru.Remove(oldest)
			evicted := oldest.Value.(string)
			delete(s.lruIdx, evicted)
			spill := s.memory[evicted]
			delete(s.memory, evicted)
			if err := s.writeFile(evicted, spill); err != nil {
				return err
			}
		}
		return nil
	}
	return s.writeFile(id, data)
}

func (s *CheckpointStore) writeFile(id string, data []byte) error {
	s.diskBytes += int64(len(data))
	if err := os.WriteFile(s.path(id), data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint %s: %w", id, err)
	}
	return nil
}

// Load retrieves a checkpoint, reporting whether it was served from the
// memory tier (fromMemory), which the executor translates into a cheap
// resume instead of a disk replay.
func (s *CheckpointStore) Load(id string) (data []byte, fromMemory bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.memory[id]; ok {
		s.memHits++
		s.lru.MoveToFront(s.lruIdx[id])
		return d, true, nil
	}
	d, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, false, fmt.Errorf("core: load checkpoint %s: %w", id, err)
	}
	s.diskHits++
	return d, false, nil
}

// Remove deletes a terminal job's checkpoint from both tiers.
func (s *CheckpointStore) Remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.lruIdx[id]; ok {
		s.lru.Remove(el)
		delete(s.lruIdx, id)
		delete(s.memory, id)
	}
	_ = os.Remove(s.path(id))
}

// Stats reports the store's activity: checkpoint writes, memory-tier and
// disk-tier resumes, and total bytes spilled to disk.
func (s *CheckpointStore) Stats() (writes, memHits, diskHits int, diskBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.memHits, s.diskHits, s.diskBytes
}
