// Package obs is the always-on observability layer under every Rotary
// executor: an allocation-light metrics registry (atomic counters, gauges,
// and fixed-bucket histograms with deterministic Prometheus text
// rendering), a streaming trace sink for the arbitration timeline, and an
// optional HTTP debug listener serving /metrics plus pprof.
//
// The hot-path contract is that recording a metric is one atomic
// operation on a pre-resolved handle: executors look their handles up once
// at construction and never touch the registry map again. Every handle
// method is nil-safe, so uninstrumented configurations pay a single nil
// check.
//
// Metrics split into two classes. Deterministic metrics are derived from
// virtual time and seed-stable inputs only — two runs from one seed
// produce bit-identical renderings, which the replay tests assert.
// Wall-clock metrics (registered through the Wall* constructors) measure
// real time and are excluded from deterministic renders and golden
// comparisons.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable
// — obtain counters from a Registry. All methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative or zero deltas are ignored
// (counters are monotone by definition).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the value by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// v with v <= bounds[i] (and greater than the previous bound); an
// implicit +Inf bucket catches the rest, matching Prometheus "le"
// semantics. All methods are nil-safe.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value. NaN observations are dropped (they poison
// the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

type entry struct {
	name string
	help string
	kind metricKind
	// wall marks a wall-clock-derived metric, excluded from deterministic
	// renders and golden comparisons.
	wall    bool
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Lookup is GetOrCreate: asking for an
// existing name with the same kind returns the shared handle (two
// executors on one registry accumulate into the same counters, like any
// process-wide metrics endpoint); a kind mismatch panics — it is a
// programming error, never data-dependent. A nil *Registry returns nil
// handles everywhere, so it composes with the nil-safe metric methods.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry instrumented layers fall
// back to when no explicit registry is configured — the always-on path.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Metric names: a Prometheus identifier, optionally followed by one
// brace-enclosed label set (e.g. `requests_total{op="submit"}`).
var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})?$`)

func (r *Registry) get(name, help string, kind metricKind, wall bool, bounds []float64) *entry {
	if r == nil {
		return nil
	}
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if kind == kindHistogram && strings.Contains(name, "{") {
		panic(fmt.Sprintf("obs: histogram %q: labels are not supported on histograms", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, e.kind))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: kind, wall: wall}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		e.hist = &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
	}
	r.entries[name] = e
	return e
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.get(name, help, kindCounter, false, nil)
	if e == nil {
		return nil
	}
	return e.counter
}

// Gauge returns the named deterministic gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.get(name, help, kindGauge, false, nil)
	if e == nil {
		return nil
	}
	return e.gauge
}

// WallGauge returns the named wall-clock gauge (excluded from
// deterministic renders).
func (r *Registry) WallGauge(name, help string) *Gauge {
	e := r.get(name, help, kindGauge, true, nil)
	if e == nil {
		return nil
	}
	return e.gauge
}

// Histogram returns the named deterministic histogram with the given
// bucket upper bounds (sorted internally; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.get(name, help, kindHistogram, false, bounds)
	if e == nil {
		return nil
	}
	return e.hist
}

// WallHistogram returns the named wall-clock histogram (excluded from
// deterministic renders).
func (r *Registry) WallHistogram(name, help string, bounds []float64) *Histogram {
	e := r.get(name, help, kindHistogram, true, bounds)
	if e == nil {
		return nil
	}
	return e.hist
}

// Value reads a counter or gauge by name (tests and cross-checks).
func (r *Registry) Value(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	e, ok := r.entries[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch e.kind {
	case kindCounter:
		return float64(e.counter.Value()), true
	case kindGauge:
		return e.gauge.Value(), true
	default:
		return 0, false
	}
}

// formatValue renders a sample value in exposition format.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// family strips the label set from a metric name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// InjectLabel rewrites a Prometheus text exposition so every sample line
// carries an extra key="value" label — the fan-in primitive a shard
// router uses to merge per-shard registries into one scrape without name
// collisions. Comment lines (# HELP / # TYPE) pass through untouched:
// they describe the metric family, which the label does not change.
// Sample lines gain the label as the first entry of their label set, after
// any histogram _bucket suffix's existing labels.
func InjectLabel(rendered, key, value string) string {
	if rendered == "" {
		return ""
	}
	label := fmt.Sprintf("%s=%q", key, value)
	var b strings.Builder
	b.Grow(len(rendered) + 16*strings.Count(rendered, "\n"))
	for _, line := range strings.SplitAfter(rendered, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			b.WriteString(line)
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			b.WriteString(line)
			continue
		}
		name, rest := line[:sp], line[sp:]
		if br := strings.IndexByte(name, '{'); br >= 0 {
			b.WriteString(name[:br+1])
			b.WriteString(label)
			b.WriteString(",")
			b.WriteString(name[br+1:])
		} else {
			b.WriteString(name)
			b.WriteString("{")
			b.WriteString(label)
			b.WriteString("}")
		}
		b.WriteString(rest)
	}
	return b.String()
}

// RenderText writes every metric in the Prometheus text exposition format
// (version 0.0.4), sorted by name so the output is stable. With
// includeWall false, wall-clock metrics are omitted and the rendering of
// a seeded run is bit-identical across replays.
func (r *Registry) RenderText(includeWall bool) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		if e.wall && !includeWall {
			continue
		}
		es = append(es, e)
	}
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })

	var b strings.Builder
	lastFamily := ""
	for _, e := range es {
		if f := family(e.name); f != lastFamily {
			lastFamily = f
			if e.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", f, strings.ReplaceAll(e.help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", f, e.kind)
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", e.name, e.counter.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", e.name, formatValue(e.gauge.Value()))
		case kindHistogram:
			h := e.hist
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", e.name, formatValue(bound), cum)
			}
			// The +Inf bucket equals the total count by definition; read
			// count once so the line stays consistent even mid-Observe.
			count := h.Count()
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", e.name, count)
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, formatValue(h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, count)
		}
	}
	return b.String()
}
