package core_test

import (
	"fmt"
	"testing"

	"rotary/internal/core"
	"rotary/internal/estimate"
)

// TestFastPathFairShareEquivalence extends the metamorphic fast-path
// suite to the weighted fair-share wrapper: a multi-tenant workload run
// with decision caching on must be bit-identical to the uncached run.
// This is the proof obligation for the ledger composition — the deficit
// ledger (usage and the idle-return wasBack set) is folded into the
// state fingerprint, and a cache hit advances it through CommitReplay
// exactly as the skipped Assign would have. Any divergence between the
// two mechanisms shows up as a trace or outcome mismatch here.
func TestFastPathFairShareEquivalence(t *testing.T) {
	weights := map[string]float64{"alpha": 3, "beta": 1, "gamma": 1}
	tenants := []string{"alpha", "beta", "gamma", ""}
	mk := func(repo *estimate.Repository) core.AQPScheduler {
		return core.NewFairShareAQP(core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3)), weights)
	}
	var hits, misses uint64
	for _, seed := range chaosSeeds {
		label := fmt.Sprintf("fair/seed=%d", seed)
		cat, specs := buildAQPWorkload(t, 8, seed)
		for i := range specs {
			specs[i].Tenant = tenants[i%len(tenants)]
		}
		off, offTr := equivAQPRun(t, cat, specs, mk, false)
		on, onTr := equivAQPRun(t, cat, specs, mk, true)
		tracesIdentical(t, label, offTr.Events(), onTr.Events())
		want := aqpOutcomes(off.Jobs())
		for _, j := range on.Jobs() {
			w := want[j.ID()]
			if j.Status() != w.status || j.Epochs() != w.epochs || j.StopAccuracy() != w.stopAcc {
				t.Errorf("%s: job %s diverged: %v/%d/%v, want %v/%d/%v",
					label, j.ID(), j.Status(), j.Epochs(), j.StopAccuracy(),
					w.status, w.epochs, w.stopAcc)
			}
		}
		if off.Engine().Now() != on.Engine().Now() {
			t.Errorf("%s: makespans diverged: off=%v on=%v", label, off.Engine().Now(), on.Engine().Now())
		}
		st := on.FastPath()
		if st.Bypassed > 0 {
			t.Errorf("%s: %d arbitrations bypassed — fair share over a profiled policy should engage the cache", label, st.Bypassed)
		}
		hits += st.Hits
		misses += st.Misses
	}
	if hits+misses == 0 {
		t.Error("fast path never consulted across the fair-share runs")
	}
	t.Logf("fair-share live-run cache: %d hits / %d misses", hits, misses)
}
