// Self-bench: the reproducible experiment behind BENCH_2.json. It runs
// the same closed-loop submit workload against two in-process durable
// servers that differ in exactly one knob — IngressBatch 1 (the
// request-at-a-time, one-fsync-per-submit baseline) versus the batched
// driver (group commit: one fsync covers every record the batch
// staged) — and reports the throughput ratio. Both servers journal to
// the same disk, run the same policy over the same dataset, and see the
// same request sequence, so the ratio isolates what the ingress ring
// and group commit buy at the serving front end.
package loadgen

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"rotary"
	"rotary/internal/admission"
	"rotary/internal/core"
	"rotary/internal/serve"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// BenchCase is one self-bench server configuration plus its measured
// outcome.
type BenchCase struct {
	Name         string `json:"name"`
	IngressBatch int    `json:"ingress_batch"`
	// Syncs / Records / Groups are the journal's fsync accounting for the
	// run: Records must match across cases (identical durable history);
	// Syncs is what group commit amortizes; Groups counts multi-record
	// commits.
	Syncs   int64   `json:"journal_syncs"`
	Records int64   `json:"journal_records"`
	Groups  int64   `json:"journal_group_commits"`
	Result  *Result `json:"result"`
}

// BenchReport is the BENCH_2.json document.
type BenchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// FsyncNs calibrates the benchmark disk: the measured cost of one
	// fsync on the journal directory's filesystem. The speedup claim is
	// only comparable across machines after scaling by this.
	FsyncNs int64 `json:"fsync_ns"`
	// Speedup is batched acked-submit throughput over the
	// fsync-per-submit baseline's, at the same workload.
	Speedup float64     `json:"speedup"`
	Cases   []BenchCase `json:"cases"`
	Soak    *Result     `json:"soak,omitempty"`
}

// BenchConfig parameterizes the self-bench.
type BenchConfig struct {
	// Dir is where the two servers journal (one subdirectory each).
	// Empty uses a temp dir under the working directory, so the fsyncs
	// hit the real project disk, not tmpfs.
	Dir string
	// Ops is the closed-loop submit count per case. Defaults to 4096.
	Ops int
	// Conns is the closed-loop connection count. Defaults to 64 — enough
	// outstanding requests to fill an IngressBatch-sized group.
	Conns int
	// Batch is the batched case's IngressBatch. Defaults to 64.
	Batch int
	// SoakClients / SoakRate / SoakSecs parameterize the optional third
	// case: an open-loop soak with a large simulated client population
	// against the batched server, reporting latency quantiles under a
	// fixed offered load. SoakClients 0 skips it.
	SoakClients int
	SoakRate    float64
	SoakSecs    float64
	// Progress, when non-nil, receives one line per completed stage.
	Progress func(string)
}

// RunBench executes the self-bench and returns the report.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 4096
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 64
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	say := cfg.Progress
	if say == nil {
		say = func(string) {}
	}
	dir := cfg.Dir
	if dir == "" {
		d, err := os.MkdirTemp(".", "loadbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}

	// The bench needs the client workers, connection handlers, and the
	// driver actually interleaving: on a single-CPU box GOMAXPROCS=1
	// serializes the whole chain so the ring never holds more than one
	// request and no group ever forms. Raise the scheduler's parallelism
	// (pure goroutine interleaving — no extra cores required) and record
	// it in the report.
	procs := runtime.GOMAXPROCS(0)
	if procs < 8 {
		procs = 8
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
	}
	rep := &BenchReport{
		Schema:     "rotary-loadbench/1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: procs,
	}
	fsyncNs, err := calibrateFsync(dir)
	if err != nil {
		return nil, err
	}
	rep.FsyncNs = fsyncNs
	say(fmt.Sprintf("fsync calibration: %.1fµs on %s", float64(fsyncNs)/1e3, dir))

	// The tiny dataset keeps catalog construction cheap; the front end,
	// not the scan volume, is what this benchmark stresses.
	ds := tpch.Generate(0.002, 1)

	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"fsync-per-submit", 1},
		{"group-commit", cfg.Batch},
	} {
		c, err := runBenchCase(dir, bc.name, bc.batch, ds, Config{
			Conns: cfg.Conns,
			Ops:   cfg.Ops,
		})
		if err != nil {
			return nil, fmt.Errorf("case %s: %w", bc.name, err)
		}
		rep.Cases = append(rep.Cases, *c)
		say(fmt.Sprintf("case %-16s: %7.0f submits/s acked, p99 %.2fms (%d fsyncs for %d records, %d group commits)",
			c.Name, c.Result.Throughput, c.Result.Submit.P99, c.Syncs, c.Records, c.Groups))
	}
	base, batched := rep.Cases[0], rep.Cases[1]
	if base.Result.Throughput > 0 {
		rep.Speedup = batched.Result.Throughput / base.Result.Throughput
	}

	if cfg.SoakClients > 0 {
		c, err := runBenchCase(dir, "open-loop-soak", cfg.Batch, ds, Config{
			Conns:       cfg.Conns,
			Clients:     cfg.SoakClients,
			Rate:        cfg.SoakRate,
			Duration:    time.Duration(cfg.SoakSecs * float64(time.Second)),
			StatusEvery: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("case open-loop-soak: %w", err)
		}
		rep.Soak = c.Result
		say(fmt.Sprintf("case %-16s: %d clients at %.0f/s: submit p50 %.2fms p99 %.2fms p999 %.2fms; status p99 %.2fms",
			"open-loop-soak", c.Result.Clients, c.Result.Rate,
			c.Result.Submit.P50, c.Result.Submit.P99, c.Result.Submit.P999, c.Result.Status.P99))
	}
	return rep, nil
}

// runBenchCase boots one durable server with the given IngressBatch,
// drives the workload against it, drains it, and collects the journal's
// sync accounting.
func runBenchCase(dir, name string, ingressBatch int, ds *tpch.Dataset, lcfg Config) (*BenchCase, error) {
	caseDir := filepath.Join(dir, name)
	if err := os.RemoveAll(caseDir); err != nil {
		return nil, err
	}
	jl, _, err := serve.OpenDurable(caseDir)
	if err != nil {
		return nil, err
	}
	defer jl.Close()

	// Round-robin keeps per-arrival arbitration cost flat and identical
	// across cases, so the measured difference is the front end's. The
	// checkpoint store stays nil — a store makes every arrival marshal a
	// pristine checkpoint, which benchmarks the checkpoint subsystem, not
	// the ingress/journal path (journal-only servers recover from scratch,
	// a supported mode).
	cat := tpch.NewCatalog(ds, 1)
	execCfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	execCfg.Admission = admission.NewController(admission.Config{}) // unbounded: refusals would skew the ratio
	exec := core.NewAQPExecutor(execCfg, rotary.RoundRobinAQP{}, rotary.NewRepository())

	socket := filepath.Join(dir, name+".sock")
	srv, err := serve.New(serve.Config{
		Socket:       socket,
		Pace:         0, // frozen clock: no epoch churn competes with the ingress path
		Journal:      jl,
		IngressBatch: ingressBatch,
	}, exec, cat)
	if err != nil {
		return nil, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	if err := awaitSocket(socket, 5*time.Second); err != nil {
		return nil, err
	}

	lcfg.Addr = socket
	lcfg.Codec = serve.CodecBinary
	lcfg.IDPrefix = name
	res, runErr := Run(lcfg)

	// Drain regardless of the run's outcome so the server goroutine and
	// journal shut down cleanly.
	if cl, err := serve.NewClient(serve.ClientConfig{Socket: socket}); err == nil {
		cl.Do(serve.Message{Op: "drain"})
		cl.Close()
	}
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("server exited: %w (run error: %v)", err, runErr)
	}
	if runErr != nil {
		return nil, runErr
	}
	if res.Errors > 0 || res.Refused > 0 {
		return nil, fmt.Errorf("%d errors, %d refusals — the ratio would not be comparing equal work (first error: %s)", res.Errors, res.Refused, res.FirstError)
	}
	syncs, records, groups := jl.SyncStats()
	return &BenchCase{
		Name:         name,
		IngressBatch: ingressBatch,
		Syncs:        syncs,
		Records:      records,
		Groups:       groups,
		Result:       res,
	}, nil
}

// awaitSocket polls until the server answers on its socket. A Stat
// probe is not enough: bind() creates the socket file before listen()
// arms it, and on a busy box the server goroutine can be preempted in
// that window — a dial against the half-born socket gets ECONNREFUSED.
// Only an accepted connection proves readiness.
func awaitSocket(path string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if conn, err := net.DialTimeout("unix", path, 100*time.Millisecond); err == nil {
			conn.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server socket %s never answered a dial", path)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// calibrateFsync measures one fsync's cost on the benchmark directory's
// filesystem, so the committed report carries the disk it was taken on.
func calibrateFsync(dir string) (int64, error) {
	f, err := os.CreateTemp(dir, "fsync-cal-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	const n = 200
	buf := []byte("calibration\n")
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := f.Write(buf); err != nil {
			return 0, err
		}
		if err := f.Sync(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / n, nil
}
