package serve

import (
	"bufio"
	"encoding/json"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// client is a line-oriented test client over the Unix socket.
type client struct {
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

func dial(t *testing.T, socket string) *client {
	t.Helper()
	conn, err := net.Dial("unix", socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, sc: bufio.NewScanner(conn), enc: json.NewEncoder(conn)}
}

func (c *client) call(t *testing.T, m Message) Response {
	t.Helper()
	if err := c.enc.Encode(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	if !c.sc.Scan() {
		t.Fatalf("no reply: %v", c.sc.Err())
	}
	var r Response
	if err := json.Unmarshal(c.sc.Bytes(), &r); err != nil {
		t.Fatalf("bad reply %q: %v", c.sc.Text(), err)
	}
	return r
}

func newTestServer(t *testing.T, admit *admission.Controller) (*Server, string) {
	t.Helper()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Admission = admit
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	socket := filepath.Join(t.TempDir(), "rotary.sock")
	// Pace 0: virtual time advances only on submit/advance/drain, so the
	// test is deterministic regardless of wall-clock scheduling.
	srv, err := New(Config{Socket: socket, Pace: 0}, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, socket
}

func serveAsync(t *testing.T, srv *Server) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// Wait for the socket to appear.
	for {
		conn, err := net.Dial("unix", srv.cfg.Socket)
		if err == nil {
			conn.Close()
			return &wg
		}
	}
}

func TestSubmitStatusDrain(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	c := dial(t, socket)

	sub := c.call(t, Message{Op: "submit", ID: "job-a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !sub.OK {
		t.Fatalf("submit refused: %+v", sub)
	}
	st := c.call(t, Message{Op: "status", ID: "job-a"})
	if !st.OK || st.Status == "" {
		t.Fatalf("status: %+v", st)
	}
	// Advance far past the deadline: the job must be terminal.
	adv := c.call(t, Message{Op: "advance", Seconds: 2000})
	if !adv.OK || adv.VirtualNow < 2000 {
		t.Fatalf("advance: %+v", adv)
	}
	st = c.call(t, Message{Op: "status", ID: "job-a"})
	for _, bad := range []string{"waiting", "pending", "running"} {
		if st.Status == bad {
			t.Fatalf("job still %s after its deadline", bad)
		}
	}
	stats := c.call(t, Message{Op: "stats"})
	if !stats.OK || stats.Jobs != 1 || stats.Terminal != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if !strings.Contains(stats.Report, "overload report: serve") {
		t.Fatalf("stats report missing overload section:\n%s", stats.Report)
	}

	dr := c.call(t, Message{Op: "drain"})
	if !dr.OK || dr.Status != "drained" {
		t.Fatalf("drain: %+v", dr)
	}
	wg.Wait()
	// A second drain (the SIGTERM handler losing the race with a client
	// drain) must not hang.
	if r := srv.Drain(); !r.OK {
		t.Fatalf("second drain: %+v", r)
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	cases := []struct {
		name string
		msg  Message
		want string
	}{
		{"no criteria", Message{Op: "submit", Statement: "q1"}, "no completion-criteria clause"},
		{"runtime criterion", Message{Op: "submit", Statement: "q1 FOR 10 MINUTES"}, "accuracy criterion"},
		{"epoch deadline", Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 5 EPOCHS"}, "wall-time"},
		{"unknown query", Message{Op: "submit", Statement: "q99 ACC MIN 60% WITHIN 900 SECONDS"}, "q99"},
		{"bad op", Message{Op: "frobnicate"}, "unknown op"},
		{"negative advance", Message{Op: "advance", Seconds: -1}, ">= 0"},
	}
	for _, tc := range cases {
		r := c.call(t, tc.msg)
		if r.OK || !strings.Contains(r.Error, tc.want) {
			t.Errorf("%s: got %+v, want error containing %q", tc.name, r, tc.want)
		}
	}

	ok := c.call(t, Message{Op: "submit", ID: "dup", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !ok.OK {
		t.Fatalf("submit: %+v", ok)
	}
	if r := c.call(t, Message{Op: "submit", ID: "dup", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.OK || !strings.Contains(r.Error, "duplicate") {
		t.Errorf("duplicate id accepted: %+v", r)
	}
	if r := c.call(t, Message{Op: "status", ID: "ghost"}); r.OK || !strings.Contains(r.Error, "unknown job") {
		t.Errorf("ghost status: %+v", r)
	}
}

func TestAdmissionRefusalOverSocket(t *testing.T) {
	ctrl := admission.NewController(admission.Config{
		MaxQueueDepth: 1,
		Policy:        admission.Reject,
	})
	srv, socket := newTestServer(t, ctrl)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	// With a 20-thread pool only one q1 runs at a time; the first fills
	// the active set, the second arrival finds it at the bound.
	first := c.call(t, Message{Op: "submit", ID: "a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if !first.OK {
		t.Fatalf("first submit refused: %+v", first)
	}
	second := c.call(t, Message{Op: "submit", ID: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
	if second.OK {
		t.Fatalf("second submit admitted past the bound: %+v", second)
	}
	if second.Status != "rejected" {
		t.Fatalf("refused submit status %q, want rejected", second.Status)
	}
	st := ctrl.Stats()
	if st.Submitted != 2 || st.Rejected != 1 {
		t.Fatalf("controller stats %+v", st)
	}
}

func TestDrainBySignalPath(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	c := dial(t, socket)
	if r := c.call(t, Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	// The out-of-band Drain (what the SIGTERM handler calls) must finish
	// the in-flight job and report it terminal.
	r := srv.Drain()
	if !r.OK || r.Status != "drained" {
		t.Fatalf("drain: %+v", r)
	}
	if r.Terminal != r.Jobs || r.Jobs != 1 {
		t.Fatalf("drain left work: %+v", r)
	}
	wg.Wait()
	// Post-drain requests get a clean refusal or a closed connection —
	// never a hang.
	if err := c.enc.Encode(Message{Op: "stats"}); err == nil && c.sc.Scan() {
		var resp Response
		if jerr := json.Unmarshal(c.sc.Bytes(), &resp); jerr == nil && resp.OK {
			t.Fatalf("post-drain request served: %+v", resp)
		}
	}
}

// newObsTestServer builds a pace-0 server whose executor, admission
// controller, and request counters all land on a private registry, with a
// bounded trace ring — the full observability surface, isolated from
// other tests sharing obs.Default().
func newObsTestServer(t *testing.T, ringCap int) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	cfg.Tracer = core.NewTracer(ringCap)
	cfg.Admission = admission.NewController(admission.Config{Obs: reg})
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	socket := filepath.Join(t.TempDir(), "rotary.sock")
	srv, err := New(Config{Socket: socket, Pace: 0, Obs: reg}, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv, socket, reg
}

// runSeededSession drives one fixed request sequence and returns the
// metrics op's Report.
func runSeededSession(t *testing.T, ringCap int) string {
	t.Helper()
	srv, socket, _ := newObsTestServer(t, ringCap)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)
	if r := c.call(t, Message{Op: "submit", ID: "g1", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	if r := c.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	m := c.call(t, Message{Op: "metrics"})
	if !m.OK {
		t.Fatalf("metrics: %+v", m)
	}
	return m.Report
}

// TestMetricsOpGoldenAndDeterministic replays the same seeded pace-0
// session twice against private registries: the metrics responses must be
// byte-identical (wall-clock metrics are excluded by default), and the
// exposition must carry the counters the session provably produced.
func TestMetricsOpGoldenAndDeterministic(t *testing.T) {
	a := runSeededSession(t, 64)
	b := runSeededSession(t, 64)
	if a != b {
		t.Fatalf("metrics op not replay-stable:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	for _, want := range []string{
		`rotary_serve_requests_total{op="submit"} 1`,
		`rotary_serve_requests_total{op="advance"} 1`,
		`rotary_serve_requests_total{op="metrics"} 1`,
		"rotary_admission_submitted_total 1",
		"rotary_admission_admitted_total 1",
		"rotary_aqp_arrivals_total 1",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("metrics report missing %q", want)
		}
	}
	if strings.Contains(a, "rotary_serve_pace_drift_secs") {
		t.Errorf("wall-class gauge leaked into the default (deterministic) metrics view")
	}
	wall := runSeededSessionWall(t)
	if !strings.Contains(wall, "rotary_serve_pace_drift_secs") {
		t.Errorf("wall=true metrics view missing the wall-class drift gauge:\n%s", wall)
	}
}

func runSeededSessionWall(t *testing.T) string {
	t.Helper()
	srv, socket, _ := newObsTestServer(t, 64)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)
	m := c.call(t, Message{Op: "metrics", Wall: true})
	if !m.OK {
		t.Fatalf("metrics wall: %+v", m)
	}
	return m.Report
}

// TestTraceTailAndHealthOps exercises the live-introspection ops: the
// trace tail must serve the bounded ring's recent events plus the
// overwrite count, and health must report job totals and the clock.
func TestTraceTailAndHealthOps(t *testing.T) {
	srv, socket, reg := newObsTestServer(t, 4)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	if r := c.call(t, Message{Op: "submit", ID: "t1", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	if r := c.call(t, Message{Op: "advance", Seconds: 2000}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}

	tail := c.call(t, Message{Op: "trace-tail", N: 2})
	if !tail.OK || tail.Report == "" {
		t.Fatalf("trace-tail: %+v", tail)
	}
	if tail.Dropped == 0 {
		t.Fatalf("a full session through a 4-slot ring reported zero overwrites")
	}
	if lines := strings.Count(strings.TrimRight(tail.Report, "\n"), "\n") + 1; lines > 2 {
		t.Fatalf("trace-tail n=2 returned %d lines:\n%s", lines, tail.Report)
	}

	h := c.call(t, Message{Op: "health"})
	if !h.OK || h.Status != "healthy" || h.Jobs != 1 || h.VirtualNow < 2000 {
		t.Fatalf("health: %+v", h)
	}
	if h.Dropped != tail.Dropped {
		t.Fatalf("health dropped %d != trace-tail dropped %d", h.Dropped, tail.Dropped)
	}
	if v, ok := reg.Value(`rotary_serve_requests_total{op="health"}`); !ok || v != 1 {
		t.Fatalf("health request counter = %v, %v", v, ok)
	}
}

// TestTraceTailWithoutTracer keeps the op a clean refusal, not a panic,
// when the executor was built without tracing.
func TestTraceTailWithoutTracer(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)
	r := c.call(t, Message{Op: "trace-tail"})
	if r.OK || !strings.Contains(r.Error, "tracing disabled") {
		t.Fatalf("trace-tail without tracer: %+v", r)
	}
}

// TestPacedDriveAnchoredClock runs a briefly paced server and checks the
// fixed-anchor invariant: the virtual clock never outruns
// Pace × wall-elapsed, yet makes real progress (the old per-tick-delta
// scheme could drift on both sides under scheduler jitter). Bounds are
// deliberately loose — this guards the anchoring logic, not timer
// precision.
func TestPacedDriveAnchoredClock(t *testing.T) {
	reg := obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = reg
	exec := core.NewAQPExecutor(cfg, baselines.RoundRobinAQP{}, nil)
	socket := filepath.Join(t.TempDir(), "rotary.sock")
	const pace = 100.0
	srv, err := New(Config{Socket: socket, Pace: pace, Tick: 5 * time.Millisecond, Obs: reg}, exec, cat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	start := time.Now()
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)

	time.Sleep(150 * time.Millisecond)
	h := c.call(t, Message{Op: "health"})
	elapsed := time.Since(start).Seconds()
	if !h.OK {
		t.Fatalf("health: %+v", h)
	}
	if h.VirtualNow > pace*elapsed+1e-6 {
		t.Fatalf("virtual clock %.3fs outran the pace line %.3fs", h.VirtualNow, pace*elapsed)
	}
	if h.VirtualNow < pace*0.150*0.1 {
		t.Fatalf("virtual clock %.3fs made almost no progress over %.0fms wall", h.VirtualNow, elapsed*1000)
	}
	if _, ok := reg.Value("rotary_serve_pace_drift_secs"); !ok {
		t.Fatalf("paced run never set the drift gauge")
	}
}
