package estimate_test

import (
	"fmt"

	"rotary/internal/estimate"
)

// The §IV-A joint fit gives each real-time point and the combined
// historical data equal weight, so the fit tracks the live job more and
// more as observations accumulate.
func ExampleJointFit() {
	historical := []estimate.Point{{X: 0, Y: 0.2}, {X: 1, Y: 0.2}} // flat history
	realtime := []estimate.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}       // steep reality
	for m := 0; m <= 2; m++ {
		line := estimate.JointFit(historical, realtime[:m])
		fmt.Printf("realtime points=%d slope=%.3f\n", m, line.Slope)
	}
	// Output:
	// realtime points=0 slope=0.000
	// realtime points=1 slope=0.133
	// realtime points=2 slope=0.667
}

// The envelope function declares convergence once a window of recent
// aggregation results stops moving (§IV-A).
func ExampleEnvelope() {
	env := estimate.NewEnvelope(3)
	for _, v := range []float64{10, 20, 30, 31, 31.2, 31.2} {
		env.Observe(v)
		fmt.Printf("after %.1f: ratio=%.2f converged=%v\n", v, env.Ratio(), env.Converged(0.98))
	}
	// Output:
	// after 10.0: ratio=0.00 converged=false
	// after 20.0: ratio=0.50 converged=false
	// after 30.0: ratio=0.33 converged=false
	// after 31.0: ratio=0.65 converged=false
	// after 31.2: ratio=0.96 converged=false
	// after 31.2: ratio=0.99 converged=true
}

// Similarity is the paper's model-size metric: 1 − |x−y| / max(x, y).
func ExampleSimilarity() {
	fmt.Printf("%.2f %.2f %.2f\n",
		estimate.Similarity(11.7, 11.7),
		estimate.Similarity(11.7, 21.8),
		estimate.Similarity(0.06, 23.8))
	// Output: 1.00 0.54 0.00
}

// TEE predicts epochs-to-accuracy from similar historical jobs before the
// job has produced any real-time results.
func ExampleTEE() {
	repo := estimate.NewRepository()
	repo.AddDLT(estimate.DLTRecord{
		ID: "prev", Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01,
		Epochs:   8,
		AccCurve: []float64{0.30, 0.45, 0.57, 0.67, 0.74, 0.79, 0.83, 0.86},
	})
	tee := estimate.NewTEE(repo, 3)
	q := estimate.DLTQuery{Model: "resnet-18", Family: "resnet", Dataset: "cifar10",
		ParamsM: 11.7, BatchSize: 32, Optimizer: "sgd", LR: 0.01}
	epochs, ok := tee.EstimateEpochs(q, nil, 0.85)
	fmt.Println(epochs, ok)
	// Output: 8 true
}
