package experiments

import (
	"fmt"
	"strings"
	"sync"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/metrics"
	"rotary/internal/sim"
	"rotary/internal/workload"
)

// dltPolicyName identifies the Fig. 10 lineup.
type dltPolicyName string

// The evaluated DLT policies.
const (
	PolicyRotaryAdaptive   dltPolicyName = "rotary-adaptive(T=50%)"
	PolicyRotaryFairness   dltPolicyName = "rotary-fairness(T=100%)"
	PolicyRotaryEfficiency dltPolicyName = "rotary-efficiency(T=0%)"
	PolicySRF              dltPolicyName = "srf"
	PolicyBCF              dltPolicyName = "bcf"
	PolicyLAFDLT           dltPolicyName = "laf"
)

var fig10Policies = []dltPolicyName{
	PolicyRotaryAdaptive, PolicyRotaryFairness, PolicyRotaryEfficiency,
	PolicySRF, PolicyBCF, PolicyLAFDLT,
}

// newDLTScheduler instantiates a policy over a (seeded) repository.
func newDLTScheduler(name dltPolicyName, repo *estimate.Repository) core.DLTScheduler {
	tee := estimate.NewTEE(repo, 3)
	tme := estimate.NewTME(repo, 3)
	switch name {
	case PolicyRotaryAdaptive:
		return core.NewRotaryDLT(0.5, tee, tme)
	case PolicyRotaryFairness:
		return core.NewRotaryDLT(1.0, tee, tme)
	case PolicyRotaryEfficiency:
		return core.NewRotaryDLT(0.0, tee, tme)
	case PolicySRF:
		return baselines.SRF{}
	case PolicyBCF:
		return baselines.BCF{}
	case PolicyLAFDLT:
		return baselines.LAFDLT{}
	default:
		panic(fmt.Sprintf("experiments: unknown DLT policy %q", name))
	}
}

// runDLTPolicy executes specs under one policy with a freshly seeded
// repository, returning the executor for inspection.
func runDLTPolicy(specs []workload.DLTSpec, name dltPolicyName, seed uint64) (*core.DLTExecutor, error) {
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 40, 30, seed); err != nil {
		return nil, err
	}
	sched := newDLTScheduler(name, repo)
	exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
	for _, spec := range specs {
		j, err := workload.BuildDLTJob(spec)
		if err != nil {
			return nil, err
		}
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		return nil, err
	}
	return exec, nil
}

// Fig10Result holds the Fig. 10 attainment-progress distributions over
// time for every policy, pooled over cfg.Runs workloads.
type Fig10Result struct {
	// Snapshots maps policy → per-interval progress distribution.
	Snapshots map[dltPolicyName][]metrics.DLTSnapshot
	// SnapshotTimes are the common sample times.
	SnapshotTimes []sim.Time
	Text          string
}

// Fig10 regenerates Fig. 10a-c (and the baselines' series).
func Fig10(cfg Config) (*Fig10Result, error) {
	// Collect all runs' jobs per policy, then pool the distributions.
	jobsByPolicy := map[dltPolicyName][][]*core.DLTJob{}
	var horizon sim.Time
	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.Seed + uint64(run)
		specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(cfg.DLTJobs, seed))
		if err != nil {
			return nil, err
		}
		// The six policies are independent; run them concurrently.
		execs := make([]*core.DLTExecutor, len(fig10Policies))
		errs := make([]error, len(fig10Policies))
		var wg sync.WaitGroup
		for i, p := range fig10Policies {
			wg.Add(1)
			go func(i int, p dltPolicyName) {
				defer wg.Done()
				execs[i], errs[i] = runDLTPolicy(specs, p, seed)
			}(i, p)
		}
		wg.Wait()
		for i, p := range fig10Policies {
			if errs[i] != nil {
				return nil, fmt.Errorf("policy %s run %d: %w", p, run, errs[i])
			}
			jobsByPolicy[p] = append(jobsByPolicy[p], execs[i].Jobs())
			if t := execs[i].Engine().Now(); t > horizon {
				horizon = t
			}
		}
	}
	// Common snapshot grid: every 60 virtual minutes.
	var times []sim.Time
	for t := sim.Time(3600); t <= horizon+3600; t += 3600 {
		times = append(times, t)
	}
	res := &Fig10Result{Snapshots: map[dltPolicyName][]metrics.DLTSnapshot{}, SnapshotTimes: times}
	var b strings.Builder
	b.WriteString("Fig 10: DLT attainment-progress distributions over time (pooled over runs)\n\n")
	for _, p := range fig10Policies {
		// Pool every run's per-job progress values at each time.
		snaps := make([]metrics.DLTSnapshot, len(times))
		for i, t := range times {
			var vals []float64
			attained := 0
			for _, jobs := range jobsByPolicy[p] {
				for _, j := range jobs {
					vals = append(vals, metrics.DLTProgressAt(j, t))
					if j.Status() == core.StatusAttainedStop && j.EndTime() <= t {
						attained++
					}
				}
			}
			snaps[i] = metrics.DLTSnapshot{At: t, Progress: metrics.Summarize(vals), Attained: attained / cfg.Runs}
		}
		res.Snapshots[p] = snaps
		b.WriteString(metrics.RenderDLTSnapshots(string(p), snaps))
		b.WriteByte('\n')
	}
	// Charts: the two quantities the paper's violins communicate — the
	// minimum attainment progress (fairness) and the attained count
	// (efficiency) over time.
	var minSeries, attSeries []metrics.Series
	for _, p := range fig10Policies {
		ms := metrics.Series{Name: string(p)}
		as := metrics.Series{Name: string(p)}
		for _, s := range res.Snapshots[p] {
			ms.Points = append(ms.Points, metrics.XY{X: s.At.Minutes(), Y: s.Progress.Min})
			as.Points = append(as.Points, metrics.XY{X: s.At.Minutes(), Y: float64(s.Attained)})
		}
		minSeries = append(minSeries, ms)
		attSeries = append(attSeries, as)
	}
	b.WriteString(metrics.RenderLineChart("minimum attainment progress vs minutes", minSeries, 64, 12))
	b.WriteByte('\n')
	b.WriteString(metrics.RenderLineChart("attained jobs vs minutes", attSeries, 64, 12))
	res.Text = b.String()
	return res, nil
}
