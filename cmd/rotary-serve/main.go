// Command rotary-serve runs the live serving mode: a long-lived arbiter
// over a Unix socket, admitting completion-criteria statements under an
// admission controller and pacing the virtual clock against wall-clock
// time. SIGTERM (or a client {"op":"drain"}) drains gracefully: new work
// is refused, in-flight jobs run to a terminal status, and the final
// overload report is printed before exit.
//
// Usage:
//
//	rotary-serve -socket /tmp/rotary.sock [-pace 60] [-queue-bound 8] [-admission reject|shed|degrade]
//	rotary-serve -socket /tmp/rotary.sock -journal /var/lib/rotary     # durable: survives kill -9
//	rotary-serve -socket /tmp/rotary.sock -journal /var/lib/rotary -shards 4   # sharded multi-arbiter
//	rotary-serve -socket /tmp/rotary.sock -listen tcp:0.0.0.0:7070     # extra TCP listener
//	rotary-serve -connect tcp:127.0.0.1:7070 -codec binary             # resilient client REPL
//
// Protocol: one JSON object per line, e.g.
//
//	{"op":"submit","id":"j1","req_id":"r1","statement":"q5 ACC MIN 80% WITHIN 900 SECONDS"}
//	{"op":"status","id":"j1"}
//	{"op":"stats"}
//	{"op":"metrics"}            — Prometheus text exposition of the obs registry
//	{"op":"trace-tail","n":20}  — last n trace-ring events plus the overwrite count
//	{"op":"health"}             — liveness probe: job totals, virtual clock, server epoch
//	{"op":"resume"}             — restart-detection handshake (server epoch + recovered count)
//	{"op":"drain"}
//
// Durability: -journal makes the arbiter crash-recoverable — every state
// transition is fsynced to a write-ahead journal before the client sees
// the reply, checkpoints persist under <dir>/ckpt, and a restart with the
// same -journal replays the journal, re-registers every non-terminal job,
// and resumes the virtual clock. Client mode (-connect) reads one JSON
// request per stdin line and reconnects with backoff across restarts.
//
// Heavy traffic: -listen adds TCP (or extra Unix) listeners alongside
// the primary socket; each connection negotiates its wire codec — JSON
// lines or the length-prefixed binary frame — by its first bytes.
// -ingress-depth bounds the ring between connection handlers and the
// driver (a full ring refuses with a typed "overloaded" reply carrying
// retry_after_secs); -ingress-batch is how many queued requests one
// driver wakeup drains, which is also the journal group-commit window:
// every record the batch stages is made durable by ONE fsync before any
// of its replies are released.
//
// Sharding: -shards N (with -journal) runs N independent durable arbiter
// shards — each with its own engine, write-ahead journal under
// <dir>/shard-<i>, and checkpoint namespace — behind a router on the
// public socket. Submits route by consistent hash on the job id; a shard
// supervisor health-probes every shard and restarts crashed ones from
// their journals with capped exponential backoff, while requests for a
// down shard get typed shard-unavailable replies instead of hangs.
// Router-only ops: {"op":"shards"} for the supervision report,
// {"op":"migrate","id":"j1","shard":2} for checkpoint-carried live
// migration, {"op":"retire","shard":0} to migrate a shard's jobs off and
// reroute around it.
//
// Observability: -http starts a debug listener serving /metrics
// (Prometheus text) and net/http/pprof; -trace-out streams every trace
// event as JSONL while -trace-ring bounds in-memory retention.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rotary"
	"rotary/internal/admission"
	"rotary/internal/cliutil"
	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/estimate"
	"rotary/internal/obs"
	"rotary/internal/serve"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rotary-serve: ")
	var (
		socket     = flag.String("socket", "/tmp/rotary.sock", "Unix socket path to listen on")
		listen     = flag.String("listen", "", `extra listeners served alongside -socket, comma-separated "tcp:host:port" / "unix:/path" specs`)
		ingDepth   = flag.Int("ingress-depth", 0, "bound on the request ring between connection handlers and the driver; a full ring refuses with a typed overloaded reply (0 = default 1024)")
		ingBatch   = flag.Int("ingress-batch", 0, "requests the driver drains per wakeup — also the journal group-commit window (0 = default 64; 1 = fsync per request)")
		journalDir = flag.String("journal", "", "durability directory: write-ahead journal + persistent checkpoints; restart with the same directory to recover (empty = process-scoped)")
		shards     = flag.Int("shards", 1, "shard the arbiter: run this many supervised durable shard workers behind a router (requires -journal; 1 = single unsharded server)")
		connect    = flag.String("connect", "", "client mode: connect to this endpoint (socket path or tcp:host:port spec) and relay JSON requests from stdin (reconnects with backoff)")
		codec      = flag.String("codec", "", "client mode wire codec: json or binary (empty = json)")
		sf         = flag.Float64("sf", 0.02, "TPC-H scale factor")
		seed       = flag.Uint64("seed", 1, "random seed")
		policy     = flag.String("policy", "rotary", "scheduling policy: rotary, relaqs, edf, laf, rr")
		pace       = flag.Float64("pace", 60, "virtual seconds per wall-clock second (0 freezes the clock between requests)")
		queueBound = flag.Int("queue-bound", 8, "admission bound on waiting+running jobs (0 = unbounded)")
		backpress  = flag.String("admission", "reject", "backpressure policy at the bound: reject, shed, degrade")
		tenants    = flag.String("tenants", "", `per-tenant quotas and fair-share weights, e.g. "alpha:weight=2,rate=0.5,burst=4,max-active=8;default:rate=1,burst=4" (empty = single-tenant)`)
		slack      = flag.Float64("slack-factor", 1, "deadline feasibility slack: refuse when slack × estimated completion exceeds the deadline (0 disables)")
		wdSlack    = flag.Float64("watchdog-slack", 4, "epoch watchdog slack over the predicted epoch cost (0 disables)")
		aging      = flag.Int("aging", 8, "starvation guard: force a minimal grant after this many consecutive skips (0 disables)")
		httpAddr   = flag.String("http", "", "debug HTTP listener address serving /metrics and pprof (e.g. 127.0.0.1:6060; empty disables)")
		traceRing  = flag.Int("trace-ring", 4096, "bound on in-memory trace events; older events are overwritten (0 = unbounded)")
		traceOut   = flag.String("trace-out", "", "stream every trace event as JSON lines to this file")
		healProbe  = flag.Float64("heal-probe", 0, "wall seconds between heal attempts against a degraded journal; degraded refusals carry it as retry_after_secs (0 = default 0.5)")
		healBudget = flag.Int("heal-budget", 0, "consecutive failed heal attempts before the health op reports journal-failed — the supervised-restart signal (0 = default 8)")
		faultRate  = flag.Float64("fault-rate", 0, "TESTING: inject seeded disk faults (ENOSPC short writes, EIO fsyncs, 4-op bursts) under the journal at this per-op probability — a live demo of degraded-mode healing (0 disables)")
	)
	flag.Parse()
	if *connect != "" {
		if err := runClient(*connect, *codec); err != nil {
			log.Fatal(err)
		}
		return
	}
	var listeners []string
	for _, spec := range strings.Split(*listen, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			listeners = append(listeners, spec)
		}
	}
	if err := cliutil.ValidateAll(
		cliutil.Positive("-sf", *sf),
		cliutil.NonNegative("-pace", *pace),
		cliutil.MinInt("-shards", *shards, 1),
		cliutil.MinInt("-ingress-depth", *ingDepth, 0),
		cliutil.MinInt("-ingress-batch", *ingBatch, 0),
		cliutil.MinInt("-queue-bound", *queueBound, 0),
		cliutil.NonNegative("-slack-factor", *slack),
		cliutil.NonNegative("-watchdog-slack", *wdSlack),
		cliutil.MinInt("-aging", *aging, 0),
		cliutil.MinInt("-trace-ring", *traceRing, 0),
		cliutil.NonNegative("-heal-probe", *healProbe),
		cliutil.MinInt("-heal-budget", *healBudget, 0),
		cliutil.NonNegative("-fault-rate", *faultRate),
	); err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}
	admitPolicy, err := admission.ParsePolicy(*backpress)
	if err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}
	tenantTable, err := admission.ParseTenantSpec(*tenants)
	if err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("generating TPC-H at SF=%g (seed %d)…\n", *sf, *seed)
	ds := tpch.Generate(*sf, *seed)

	if *shards > 1 {
		if *journalDir == "" {
			log.Fatal("-shards > 1 requires -journal: shards are durable workers restarted from their journals")
		}
		if err := runSharded(shardedOpts{
			socket:     *socket,
			listeners:  listeners,
			ingDepth:   *ingDepth,
			ingBatch:   *ingBatch,
			journalDir: *journalDir,
			shards:     *shards,
			ds:         ds,
			seed:       *seed,
			policy:     *policy,
			admit:      admitPolicy,
			queueBound: *queueBound,
			slack:      *slack,
			wdSlack:    *wdSlack,
			aging:      *aging,
			traceRing:  *traceRing,
			pace:       *pace,
			httpAddr:   *httpAddr,
			tenants:    tenantTable,
			healProbe:  *healProbe,
			healBudget: *healBudget,
			faultRate:  *faultRate,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	cat := tpch.NewCatalog(ds, *seed)
	repo := rotary.NewRepository()
	sched, err := buildScheduler(*policy, repo, cat)
	if err != nil {
		log.Println(err)
		flag.Usage()
		os.Exit(2)
	}
	if tenantTable.Enabled() {
		// Weighted fair share wraps the policy: quotas gate arrivals at
		// admission, the DRF layer divides threads among active tenants.
		sched = core.NewFairShareAQP(sched, tenantTable.Weights())
	}

	tracer := core.NewTracer(*traceRing)
	if *traceOut != "" {
		sink, err := obs.OpenJSONLSink(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer sink.Close()
		tracer.SetSink(sink)
	}

	execCfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	execCfg.Tracer = tracer
	execCfg.Admission = admission.NewController(admission.Config{
		MaxQueueDepth: *queueBound,
		SlackFactor:   *slack,
		Policy:        admitPolicy,
		Tenants:       tenantTable,
	})
	execCfg.AgingRounds = *aging
	var jl *serve.Journal
	if *journalDir != "" {
		// Durable mode: journal plus a persistent checkpoint store whose
		// sweep retains journal-referenced checkpoints, so recovered jobs
		// reattach across restarts instead of restarting from scratch.
		j, store, err := serve.OpenDurableIO(*journalDir, faultIO(*faultRate, *seed, 0))
		if err != nil {
			log.Fatal(err)
		}
		defer j.Close()
		jl = j
		execCfg.Store = store
		if *wdSlack > 0 {
			execCfg.WatchdogSlack = *wdSlack
		}
		rec := j.Recovered()
		if n := len(rec.NonTerminal()); n > 0 || rec.DroppedBytes > 0 {
			fmt.Printf("journal: server epoch %d, recovering %d live jobs at virtual %.0fs (%d corrupt tail bytes dropped)\n",
				rec.ServerEpoch, n, rec.VirtualNow, rec.DroppedBytes)
		}
	} else if *wdSlack > 0 {
		dir, err := os.MkdirTemp("", "rotary-serve-ckpt-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		store, err := rotary.NewCheckpointStore(dir, 8)
		if err != nil {
			log.Fatal(err)
		}
		execCfg.Store = store
		execCfg.WatchdogSlack = *wdSlack
	}
	exec := core.NewAQPExecutor(execCfg, sched, repo)

	srv, err := serve.New(serve.Config{
		Socket:          *socket,
		Listeners:       listeners,
		IngressDepth:    *ingDepth,
		IngressBatch:    *ingBatch,
		Pace:            *pace,
		Journal:         jl,
		HealProbeSecs:   *healProbe,
		MaxHealFailures: *healBudget,
	}, exec, cat)
	if err != nil {
		log.Fatal(err)
	}
	if *httpAddr != "" {
		dbg, err := obs.StartDebug(*httpAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug HTTP on http://%s (/metrics, /debug/pprof)\n", dbg.Addr())
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigCh
		fmt.Printf("\n%v: draining…\n", sig)
		srv.Drain()
	}()

	fmt.Printf("serving %s on %s (pace %gx, queue bound %d, %s backpressure)\n",
		sched.Name(), *socket, *pace, *queueBound, admitPolicy)
	start := time.Now()
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
	r := srv.Final()
	fmt.Printf("drained %d/%d jobs after %s (virtual now %.0fs)\n%s",
		r.Terminal, r.Jobs, time.Since(start).Round(time.Millisecond), r.VirtualNow, r.Report)
	if !r.OK {
		log.Fatal(r.Error)
	}
}

// buildScheduler constructs the scheduling policy, seeding the Rotary
// progress estimator's history when the paper's policy is selected.
func buildScheduler(policy string, repo *estimate.Repository, cat *tpch.Catalog) (core.AQPScheduler, error) {
	switch policy {
	case "rotary":
		if err := workload.SeedAQPHistory(repo, cat, workload.RecommendedBatchRows(cat)); err != nil {
			return nil, err
		}
		return rotary.NewRotaryAQP(rotary.NewAccuracyProgress(repo, 3)), nil
	case "relaqs":
		return rotary.ReLAQS{}, nil
	case "edf":
		return rotary.EDFAQP{}, nil
	case "laf":
		return rotary.LAFAQP{}, nil
	case "rr":
		return rotary.RoundRobinAQP{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
}

// shardedOpts carries the sharded daemon's configuration from the flag
// set into runSharded.
type shardedOpts struct {
	socket     string
	listeners  []string
	ingDepth   int
	ingBatch   int
	journalDir string
	shards     int
	ds         *tpch.Dataset
	seed       uint64
	policy     string
	admit      admission.Policy
	queueBound int
	slack      float64
	wdSlack    float64
	aging      int
	traceRing  int
	pace       float64
	httpAddr   string
	tenants    admission.TenantTable
	healProbe  float64
	healBudget int
	faultRate  float64
}

// faultIO builds the disk layer for one durable state directory: the
// real filesystem normally, a seeded fault injector when -fault-rate is
// set (write failures land ENOSPC short writes, fsync failures deal
// EIO, and each drawn fault extends over a 4-op burst — long enough to
// latch the journal degraded so the heal path is observable live).
func faultIO(rate float64, seed uint64, index int) diskio.IO {
	if rate <= 0 {
		return nil // nil selects the passthrough OS layer
	}
	return diskio.NewFaulty(nil, diskio.FaultConfig{
		Seed:          seed + uint64(index),
		WriteFailRate: rate,
		SyncFailRate:  rate,
		BurstOps:      4,
	})
}

// runSharded runs the router-fronted multi-arbiter daemon: one shared
// TPC-H dataset, N isolated shard stacks (catalog, history repository,
// scheduler, admission controller, tracer, metrics registry) built on
// demand — at boot and again on every supervised restart.
func runSharded(o shardedOpts) error {
	build := func(index int, store *core.CheckpointStore) (*core.AQPExecutor, *tpch.Catalog, *obs.Registry, error) {
		reg := obs.NewRegistry()
		cat := tpch.NewCatalog(o.ds, o.seed+uint64(index))
		repo := rotary.NewRepository()
		sched, err := buildScheduler(o.policy, repo, cat)
		if err != nil {
			return nil, nil, nil, err
		}
		if o.tenants.Enabled() {
			sched = core.NewFairShareAQP(sched, o.tenants.Weights())
		}
		execCfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
		execCfg.Obs = reg
		execCfg.Tracer = core.NewTracer(o.traceRing)
		execCfg.Admission = admission.NewController(admission.Config{
			MaxQueueDepth: o.queueBound,
			SlackFactor:   o.slack,
			Policy:        o.admit,
			Obs:           reg,
			Tenants:       o.tenants,
		})
		execCfg.AgingRounds = o.aging
		execCfg.Store = store
		if o.wdSlack > 0 {
			execCfg.WatchdogSlack = o.wdSlack
		}
		exec := core.NewAQPExecutor(execCfg, sched, repo)
		return exec, cat, reg, nil
	}
	router, err := serve.NewRouter(serve.RouterConfig{
		Socket:          o.socket,
		Listeners:       o.listeners,
		IngressDepth:    o.ingDepth,
		IngressBatch:    o.ingBatch,
		Shards:          o.shards,
		Dir:             o.journalDir,
		Build:           build,
		Pace:            o.pace,
		HealProbeSecs:   o.healProbe,
		MaxHealFailures: o.healBudget,
		DiskIO:          func(index int) diskio.IO { return faultIO(o.faultRate, o.seed, index) },
	})
	if err != nil {
		return err
	}
	if o.httpAddr != "" {
		dbg, err := obs.StartDebug(o.httpAddr, nil)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug HTTP on http://%s (/metrics, /debug/pprof)\n", dbg.Addr())
	}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	go func() {
		sig := <-sigCh
		fmt.Printf("\n%v: draining %d shards…\n", sig, o.shards)
		router.Drain()
	}()
	fmt.Printf("serving %d shards on %s (pace %gx, state under %s)\n", o.shards, o.socket, o.pace, o.journalDir)
	start := time.Now()
	if err := router.Serve(); err != nil {
		return err
	}
	r := router.Final()
	fmt.Printf("drained %d/%d jobs across %d shards after %s (virtual now %.0fs)\n",
		r.Terminal, r.Jobs, o.shards, time.Since(start).Round(time.Millisecond), r.VirtualNow)
	if !r.OK {
		return fmt.Errorf("%s", r.Error)
	}
	return nil
}

// runClient is the resilient client REPL: one JSON request per stdin
// line, relayed through the reconnecting client, one JSON reply per
// stdout line. Restart detections are reported on stderr so piped output
// stays clean. Submits should carry a req_id — the journal-backed dedupe
// is what makes a retried submit idempotent when the daemon was killed
// between applying it and replying.
func runClient(socket, codec string) error {
	cl, err := serve.NewClient(serve.ClientConfig{Socket: socket, Codec: codec, RetryHinted: true})
	if err != nil {
		return err
	}
	defer cl.Close()
	out := json.NewEncoder(os.Stdout)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	restarts := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var m serve.Message
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			log.Printf("bad request: %v", err)
			continue
		}
		resp, err := cl.Do(m)
		if err != nil {
			return err
		}
		if r := cl.Restarts(); r > restarts {
			restarts = r
			log.Printf("server restarted (epoch %d): journaled jobs recovered; retry lost submits with their req_id", cl.ServerEpoch())
		}
		if err := out.Encode(resp); err != nil {
			return err
		}
	}
	return sc.Err()
}
