package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"rotary/internal/admission"
	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/obs"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// tenantHarness is the multi-tenant variant of durableHarness: a
// durable daemon whose executor carries a tenant-quota admission
// controller and a weighted fair-share arbitration layer, restartable
// over one on-disk state directory. ctrl and reg always point at the
// CURRENT incarnation's ledger and registry (both are incarnation-local
// by design — the journal, not the counters, is the durable record).
type tenantHarness struct {
	dir      string
	socket   string
	table    admission.TenantTable
	fastPath bool

	srv  *Server
	exec *core.AQPExecutor
	ctrl *admission.Controller
	reg  *obs.Registry
	wg   *sync.WaitGroup
}

func newTenantHarness(t *testing.T, table admission.TenantTable) *tenantHarness {
	t.Helper()
	base := t.TempDir()
	return &tenantHarness{
		dir:    filepath.Join(base, "state"),
		socket: filepath.Join(base, "rotary.sock"),
		table:  table,
	}
}

func (h *tenantHarness) start(t *testing.T) {
	t.Helper()
	jl, store, err := OpenDurable(h.dir)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	h.reg = obs.NewRegistry()
	ds := tpch.Generate(0.005, 1)
	cat := tpch.NewCatalog(ds, 1)
	cfg := core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat))
	cfg.Obs = h.reg
	cfg.Store = store
	cfg.FastPath = h.fastPath
	h.ctrl = admission.NewController(admission.Config{Tenants: h.table, Obs: h.reg})
	cfg.Admission = h.ctrl
	sched := core.NewFairShareAQP(baselines.RoundRobinAQP{}, h.table.Weights())
	h.exec = core.NewAQPExecutor(cfg, sched, nil)
	h.srv, err = New(Config{Socket: h.socket, Pace: 0, Obs: h.reg, Journal: jl}, h.exec, cat)
	if err != nil {
		jl.Close()
		t.Fatalf("New (tenant durable): %v", err)
	}
	h.wg = serveAsync(t, h.srv)
}

func (h *tenantHarness) kill(t *testing.T) {
	t.Helper()
	h.srv.Kill()
	h.wg.Wait()
}

func liveStatus(s string) bool {
	return s == "submitted" || s == "pending" || s == "running"
}

func TestTenantQuotaRefusalOverSocket(t *testing.T) {
	h := newTenantHarness(t, admission.TenantTable{
		Tenants: map[string]admission.TenantQuota{
			"b": {RatePerSec: 0.5, Burst: 1},
		},
	})
	h.start(t)
	defer h.kill(t)
	c := dial(t, h.socket)

	stmt := "q1 ACC MIN 60% WITHIN 900 SECONDS"
	r1 := c.call(t, Message{Op: "submit", ID: "quota-1", Tenant: "b", Statement: stmt})
	if !r1.OK {
		t.Fatalf("first submit refused: %+v", r1)
	}
	if r1.Tenant != "b" {
		t.Fatalf("tenant not echoed: %+v", r1)
	}

	// Same virtual instant: the bucket holds burst-1 tokens now, so the
	// second submit must come back as a typed quota refusal with the
	// controller's retry horizon, not a generic admission error.
	r2 := c.call(t, Message{Op: "submit", ID: "quota-2", Tenant: "b", Statement: stmt})
	if r2.OK {
		t.Fatalf("over-quota submit admitted: %+v", r2)
	}
	if r2.Code != CodeTenantQuota {
		t.Fatalf("code = %q, want %q (%+v)", r2.Code, CodeTenantQuota, r2)
	}
	if r2.RetryAfterSecs <= 0 {
		t.Fatalf("quota refusal carries no retry hint: %+v", r2)
	}
	if r2.Status != "rejected" {
		t.Fatalf("status = %q, want rejected", r2.Status)
	}

	// After the hinted horizon the bucket has refilled and the tenant is
	// welcome again.
	if r := c.call(t, Message{Op: "advance", Seconds: r2.RetryAfterSecs + 0.001}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	if r := c.call(t, Message{Op: "submit", ID: "quota-3", Tenant: "b", Statement: stmt}); !r.OK {
		t.Fatalf("post-hint submit refused: %+v", r)
	}

	// Malformed tenant ids are refused at the protocol boundary before
	// they can reach journals or metric labels. (Invalid UTF-8 cannot be
	// probed through this JSON client — encoding/json replaces it with
	// U+FFFD on both marshal and unmarshal — so that arm of
	// ValidateTenant is exercised by the fuzz harness instead.)
	for _, bad := range []string{"ctl\x01chars", strings.Repeat("x", maxTenantBytes+1)} {
		r := c.call(t, Message{Op: "submit", Tenant: bad, Statement: stmt})
		if r.OK || r.Code != CodeBadRequest {
			t.Fatalf("tenant %q: got %+v, want %s", bad, r, CodeBadRequest)
		}
	}
}

// quotaVerdict is the externally observable admission outcome of one
// submission — exactly the fields the determinism contract promises to
// reproduce bit-identically across restarts and fast-path modes.
type quotaVerdict struct {
	OK    bool
	Code  string
	Retry float64
}

// runQuotaScript drives steps [from, to) of a scripted submission
// sequence: each step advances the virtual clock by gap[i] seconds and
// then submits one job for the tenant, recording the verdict.
func runQuotaScript(t *testing.T, c *client, tenant, prefix string, gaps []float64, from, to int) []quotaVerdict {
	t.Helper()
	out := make([]quotaVerdict, 0, to-from)
	for i := from; i < to; i++ {
		if gaps[i] > 0 {
			if r := c.call(t, Message{Op: "advance", Seconds: gaps[i]}); !r.OK {
				t.Fatalf("advance step %d: %+v", i, r)
			}
		}
		r := c.call(t, Message{
			Op: "submit", ID: fmt.Sprintf("%s-%02d", prefix, i), Tenant: tenant,
			Statement: "q6 ACC MIN 50% WITHIN 2000 SECONDS",
		})
		out = append(out, quotaVerdict{OK: r.OK, Code: r.Code, Retry: r.RetryAfterSecs})
	}
	return out
}

// TestTenantBucketReplayDeterminism is the satellite (c) proof: the
// token bucket refills from the virtual clock only, mutates only on
// final admission, and is rebuilt from the journal on restart — so an
// identical submission script yields bit-identical verdicts whether the
// daemon ran uninterrupted or was SIGKILLed mid-script and recovered.
func TestTenantBucketReplayDeterminism(t *testing.T) {
	table := admission.TenantTable{
		Tenants: map[string]admission.TenantQuota{
			"b": {RatePerSec: 0.25, Burst: 2},
		},
	}
	gaps := []float64{0, 1, 3, 0, 8, 0, 2, 4, 0, 1, 6, 0}

	control := newTenantHarness(t, table)
	control.start(t)
	cc := dial(t, control.socket)
	want := runQuotaScript(t, cc, "b", "det", gaps, 0, len(gaps))
	control.kill(t)

	crash := newTenantHarness(t, table)
	crash.start(t)
	kc := dial(t, crash.socket)
	got := runQuotaScript(t, kc, "b", "det", gaps, 0, 6)
	crash.kill(t)
	crash.start(t)
	defer crash.kill(t)
	kc = dial(t, crash.socket)
	if r := kc.call(t, Message{Op: "resume"}); r.Code != CodeServerRestarted && !r.OK {
		t.Fatalf("resume after restart: %+v", r)
	}
	got = append(got, runQuotaScript(t, kc, "b", "det", gaps, 6, len(gaps))...)

	if len(got) != len(want) {
		t.Fatalf("verdict count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d diverged across restart: got %+v, want %+v\nall: got %+v\nwant %+v",
				i, got[i], want[i], got, want)
		}
	}
}

// reframeJournal rewrites every record in the harness's journal through
// mutate, re-framing each line with a fresh CRC. It parses the RJNL1
// framing independently of the implementation so the test would catch a
// framing drift too.
func reframeJournal(t *testing.T, dir string, mutate func(map[string]any)) {
	t.Helper()
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != journalMagic {
			t.Fatalf("unexpected journal framing: %q", line)
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(parts[2]), &rec); err != nil {
			t.Fatalf("journal payload: %v", err)
		}
		mutate(rec)
		payload, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		fmt.Fprintf(&out, "%s %08x %s\n", journalMagic, crc32.ChecksumIEEE(payload), payload)
	}
	if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
		t.Fatalf("write journal: %v", err)
	}
}

// TestJournalForwardCompat is the satellite (b) regression: a journal
// written by a FUTURE rotary version — every record carrying fields
// this build has never heard of — must still replay cleanly, ignoring
// the unknown fields and recovering every job with its tenant intact.
func TestJournalForwardCompat(t *testing.T) {
	h := newTenantHarness(t, admission.TenantTable{
		Tenants: map[string]admission.TenantQuota{"alpha": {Weight: 2}},
	})
	h.start(t)
	c := dial(t, h.socket)
	if r := c.call(t, Message{Op: "submit", ID: "fc-alpha", Tenant: "alpha",
		Statement: "q1 ACC MIN 60% WITHIN 2000 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	if r := c.call(t, Message{Op: "submit", ID: "fc-default",
		Statement: "q3 ACC MIN 55% WITHIN 2000 SECONDS"}); !r.OK {
		t.Fatalf("submit: %+v", r)
	}
	if r := c.call(t, Message{Op: "advance", Seconds: 5}); !r.OK {
		t.Fatalf("advance: %+v", r)
	}
	h.kill(t)

	reframeJournal(t, h.dir, func(rec map[string]any) {
		rec["future_schema"] = 7
		rec["future_hints"] = map[string]any{"placement": []any{"rack-1", "rack-2"}, "qos": 0.99}
		if jobs, ok := rec["jobs"].([]any); ok {
			for _, j := range jobs {
				if m, ok := j.(map[string]any); ok {
					m["future_job_field"] = "ignored"
				}
			}
		}
	})

	h.start(t)
	defer h.kill(t)
	c = dial(t, h.socket)
	r := c.call(t, Message{Op: "resume"})
	if r.Recovered < 2 {
		t.Fatalf("recovered %d jobs from future-versioned journal, want >= 2 (%+v)", r.Recovered, r)
	}
	st := c.call(t, Message{Op: "status", ID: "fc-alpha"})
	if !st.OK || !liveStatus(st.Status) {
		t.Fatalf("fc-alpha after future-journal replay: %+v", st)
	}
	if st.Tenant != "alpha" {
		t.Fatalf("tenant lost through future-journal replay: %+v", st)
	}
	if st = c.call(t, Message{Op: "status", ID: "fc-default"}); !st.OK || !liveStatus(st.Status) {
		t.Fatalf("fc-default after future-journal replay: %+v", st)
	}
}

// TestTenantQuotaFastPathBitIdentical proves quota enforcement is
// oblivious to the arbitration fast path: the same multi-tenant script
// (admits, rate refusals, cap refusals, clock advances) yields the same
// verdict sequence and the same final per-tenant ledgers with decision
// caching on and off.
func TestTenantQuotaFastPathBitIdentical(t *testing.T) {
	table := admission.TenantTable{
		Tenants: map[string]admission.TenantQuota{
			"a": {Weight: 3},
			"b": {Weight: 1, RatePerSec: 0.2, Burst: 2, MaxActive: 1, MaxPending: 1},
		},
	}
	run := func(fastPath bool) ([]quotaVerdict, map[string]admission.TenantStats) {
		h := newTenantHarness(t, table)
		h.fastPath = fastPath
		h.start(t)
		defer h.kill(t)
		c := dial(t, h.socket)
		var verdicts []quotaVerdict
		step := func(tenant, id string, adv float64) {
			if adv > 0 {
				if r := c.call(t, Message{Op: "advance", Seconds: adv}); !r.OK {
					t.Fatalf("advance: %+v", r)
				}
			}
			r := c.call(t, Message{Op: "submit", ID: id, Tenant: tenant,
				Statement: "q6 ACC MIN 50% WITHIN 2000 SECONDS"})
			verdicts = append(verdicts, quotaVerdict{OK: r.OK, Code: r.Code, Retry: r.RetryAfterSecs})
		}
		step("a", "fp-a0", 0)
		step("b", "fp-b0", 0)
		step("b", "fp-b1", 0) // active-cap or rate refusal
		step("a", "fp-a1", 2)
		step("b", "fp-b2", 0)
		step("a", "fp-a2", 6)
		step("b", "fp-b3", 0)
		step("b", "fp-b4", 1)
		step("a", "fp-a3", 4)
		return verdicts, h.ctrl.TenantStats()
	}
	slowV, slowS := run(false)
	fastV, fastS := run(true)
	if !reflect.DeepEqual(slowV, fastV) {
		t.Fatalf("verdicts diverged under fast path:\noff %+v\non  %+v", slowV, fastV)
	}
	if !reflect.DeepEqual(slowS, fastS) {
		t.Fatalf("tenant ledgers diverged under fast path:\noff %+v\non  %+v", slowS, fastS)
	}
}

// stubServer is a minimal line server for client retry tests: it
// answers the resume handshake and hands every other request to the
// script function. submits counts how many non-resume requests landed.
type stubServer struct {
	ln      net.Listener
	mu      sync.Mutex
	served  int
	script  func(n int) Response
	closing bool
}

func startStubServer(t *testing.T, socket string, script func(n int) Response) *stubServer {
	t.Helper()
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatalf("stub listen: %v", err)
	}
	s := &stubServer{ln: ln, script: script}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serveConn(conn)
		}
	}()
	t.Cleanup(func() {
		s.mu.Lock()
		s.closing = true
		s.mu.Unlock()
		ln.Close()
	})
	return s
}

func (s *stubServer) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var m Message
		if json.Unmarshal(sc.Bytes(), &m) != nil {
			return
		}
		if m.Op == "resume" {
			enc.Encode(Response{OK: true, ServerEpoch: 1})
			continue
		}
		s.mu.Lock()
		n := s.served
		s.served++
		s.mu.Unlock()
		enc.Encode(s.script(n))
	}
}

func (s *stubServer) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// TestClientHonorsRetryHints is the satellite (a) suite: serve.Client
// sleeps for the server-supplied retry_after_secs on hinted refusals
// (shard-unavailable and, when opted in, over-quota) instead of blind
// exponential backoff, and surfaces the typed refusal — not an error —
// when the hints never clear.
func TestClientHonorsRetryHints(t *testing.T) {
	newStub := func(t *testing.T, script func(n int) Response) (*stubServer, *Client) {
		socket := filepath.Join(t.TempDir(), "stub.sock")
		s := startStubServer(t, socket, script)
		c, err := NewClient(ClientConfig{
			Socket: socket, Attempts: 6, Backoff: time.Millisecond,
			RetryHinted: true, RetryOverQuota: true,
		})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		t.Cleanup(func() { c.Close() })
		return s, c
	}

	t.Run("quota-hint-then-admit", func(t *testing.T) {
		s, c := newStub(t, func(n int) Response {
			if n < 2 {
				return Response{Code: CodeTenantQuota, Error: "over quota", RetryAfterSecs: 0.03}
			}
			return Response{OK: true, ID: "ok-1", Status: "pending"}
		})
		start := time.Now()
		resp, err := c.Do(Message{Op: "submit", Tenant: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if err != nil || !resp.OK {
			t.Fatalf("Do: resp %+v err %v", resp, err)
		}
		if got := s.count(); got != 3 {
			t.Fatalf("server saw %d submits, want 3", got)
		}
		// Two hinted waits of 30ms each must have elapsed — the hint, not
		// the 1ms backoff, paced the retries.
		if el := time.Since(start); el < 50*time.Millisecond {
			t.Fatalf("retries too fast (%v): hint not honored", el)
		}
	})

	t.Run("shard-unavailable-hint", func(t *testing.T) {
		s, c := newStub(t, func(n int) Response {
			if n == 0 {
				return Response{Code: CodeShardUnavailable, Error: "restarting", RetryAfterSecs: 0.02}
			}
			return Response{OK: true, Status: "pending"}
		})
		resp, err := c.Do(Message{Op: "submit", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if err != nil || !resp.OK {
			t.Fatalf("Do: resp %+v err %v", resp, err)
		}
		if got := s.count(); got != 2 {
			t.Fatalf("server saw %d submits, want 2", got)
		}
	})

	t.Run("opt-out-returns-refusal-immediately", func(t *testing.T) {
		socket := filepath.Join(t.TempDir(), "stub.sock")
		s := startStubServer(t, socket, func(n int) Response {
			return Response{Code: CodeTenantQuota, Error: "over quota", RetryAfterSecs: 5}
		})
		c, err := NewClient(ClientConfig{Socket: socket, Attempts: 6, Backoff: time.Millisecond})
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		defer c.Close()
		resp, err := c.Do(Message{Op: "submit", Tenant: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if err != nil || resp.OK || resp.Code != CodeTenantQuota {
			t.Fatalf("Do: resp %+v err %v, want immediate typed refusal", resp, err)
		}
		if got := s.count(); got != 1 {
			t.Fatalf("server saw %d submits, want 1 (no hinted retries without opt-in)", got)
		}
	})

	t.Run("exhausted-hints-surface-last-refusal", func(t *testing.T) {
		s, c := newStub(t, func(n int) Response {
			return Response{Code: CodeShardUnavailable, Error: "still down", RetryAfterSecs: 0.005}
		})
		resp, err := c.Do(Message{Op: "status", ID: "x"})
		if err != nil {
			t.Fatalf("exhausted hints must return the refusal, not an error: %v", err)
		}
		if resp.OK || resp.Code != CodeShardUnavailable {
			t.Fatalf("resp = %+v, want shard-unavailable refusal", resp)
		}
		if got := s.count(); got != 6 {
			t.Fatalf("server saw %d attempts, want all 6", got)
		}
	})
}

// tenantEvent is one arrival in a noisy-neighbor plan.
type tenantEvent struct {
	at     float64
	id     string
	tenant string
	stmt   string
}

// noisyPlan builds the seeded two-tenant workload: a handful of
// well-behaved tenant-a queries (plus one infeasibly tight one) against
// a 20x Poisson flood from tenant b.
func noisyPlan(seed int64) (aJobs, bJobs []tenantEvent) {
	queries := []string{"q1", "q3", "q5", "q6"}
	r := sim.NewRand(uint64(seed) ^ 0x70a11)
	for i := 0; i < 6; i++ {
		at := 10 + float64(i)*40 + r.Float64()*10
		acc := 50 + 5*(i%3)
		aJobs = append(aJobs, tenantEvent{
			at: at, id: fmt.Sprintf("a-%d-%d", seed, i), tenant: "a",
			stmt: fmt.Sprintf("%s ACC MIN %d%% WITHIN 2000 SECONDS", queries[i%len(queries)], acc),
		})
	}
	// One deliberately hopeless deadline: it must terminate the same way
	// with or without the noisy neighbor.
	aJobs = append(aJobs, tenantEvent{
		at: 95, id: fmt.Sprintf("a-%d-tight", seed), tenant: "a",
		stmt: "q1 ACC MIN 99% WITHIN 3 SECONDS",
	})
	// Tenant b: Poisson arrivals, mean inter-arrival 1.8s over [0, 260) —
	// roughly 20x tenant a's submission rate.
	br := sim.NewRand(uint64(seed) ^ 0x6e0155)
	at := 0.0
	for i := 0; ; i++ {
		at += br.Exp(1.8)
		if at >= 260 {
			break
		}
		bJobs = append(bJobs, tenantEvent{
			at: at, id: fmt.Sprintf("b-%d-%03d", seed, i), tenant: "b",
			stmt: "q6 ACC MIN 50% WITHIN 2000 SECONDS",
		})
	}
	return aJobs, bJobs
}

// runNoisy drives one plan to completion. killAt >= 0 SIGKILLs the
// daemon at the first event past that virtual time and restarts it.
// Returns each tenant-a job's terminal status and the advance step
// (50-virtual-second granularity) at which it was first observed
// terminal — the per-job completion latency in deterministic units.
func runNoisy(t *testing.T, h *tenantHarness, events []tenantEvent, aIDs []string, killAt float64) (map[string]string, map[string]int) {
	t.Helper()
	h.start(t)
	c := dial(t, h.socket)
	now, killed := 0.0, killAt < 0
	for _, ev := range events {
		if !killed && ev.at >= killAt {
			killed = true
			h.kill(t)
			h.start(t)
			c = dial(t, h.socket)
			if r := c.call(t, Message{Op: "resume"}); !r.OK && r.Code != CodeServerRestarted {
				t.Fatalf("resume after chaos kill: %+v", r)
			}
		}
		if ev.at > now {
			if r := c.call(t, Message{Op: "advance", Seconds: ev.at - now}); !r.OK {
				t.Fatalf("advance to %.1f: %+v", ev.at, r)
			}
			now = ev.at
		}
		r := c.call(t, Message{Op: "submit", ID: ev.id, Tenant: ev.tenant, Statement: ev.stmt})
		if ev.tenant == "a" && !r.OK {
			t.Fatalf("tenant-a submit %s refused: %+v", ev.id, r)
		}
	}

	status := make(map[string]string, len(aIDs))
	doneStep := make(map[string]int, len(aIDs))
	for step := 0; step < 80; step++ {
		if r := c.call(t, Message{Op: "advance", Seconds: 50}); !r.OK {
			t.Fatalf("advance step %d: %+v", step, r)
		}
		done := 0
		for _, id := range aIDs {
			if _, ok := doneStep[id]; ok {
				done++
				continue
			}
			st := c.call(t, Message{Op: "status", ID: id})
			if !st.OK {
				t.Fatalf("status %s: %+v", id, st)
			}
			if !liveStatus(st.Status) {
				status[id] = st.Status
				doneStep[id] = step
				done++
			}
		}
		if done == len(aIDs) {
			break
		}
	}
	for _, id := range aIDs {
		if _, ok := doneStep[id]; !ok {
			t.Fatalf("tenant-a job %s never terminated under the plan horizon", id)
		}
	}
	h.kill(t)
	return status, doneStep
}

// dumpTenantArtifact writes a per-tenant metrics snapshot for CI
// triage when ROTARY_CHAOS_ARTIFACTS names a directory.
func dumpTenantArtifact(t *testing.T, name string, stats map[string]admission.TenantStats, reg *obs.Registry) {
	dir := os.Getenv("ROTARY_CHAOS_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	var b strings.Builder
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "tenant %s: %+v\n", n, stats[n])
	}
	if reg != nil {
		b.WriteString("\n--- registry ---\n")
		b.WriteString(reg.RenderText(false))
	}
	path := filepath.Join(dir, name+".tenants")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("tenant snapshot saved to %s", path)
}

// TestNoisyNeighborChaos is the tentpole isolation proof. At each seed,
// tenant a's workload runs twice over identical virtual timelines: a
// control run alone on a quiet daemon, and a chaos run sharing it with
// tenant b flooding submissions at ~20x a's rate while the daemon is
// SIGKILLed and recovered mid-flood. Isolation holds when (1) every
// tenant-a job reaches the SAME terminal status as in the control, (2)
// per-job completion latency degrades by no more than the fair-share
// bound plus restart slack, (3) tenant b is demonstrably overloaded and
// mostly refused, and (4) the admission ledger, the obs counters, and
// the refusal arithmetic reconcile exactly.
func TestNoisyNeighborChaos(t *testing.T) {
	table := admission.TenantTable{
		Tenants: map[string]admission.TenantQuota{
			"a": {Weight: 4},
			"b": {Weight: 1, RatePerSec: 0.1, Burst: 3, MaxActive: 2, MaxPending: 2},
		},
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			aJobs, bJobs := noisyPlan(seed)
			if len(bJobs) < 20*len(aJobs) {
				t.Fatalf("plan too quiet: %d b-jobs for %d a-jobs, want 20x", len(bJobs), len(aJobs))
			}
			aIDs := make([]string, len(aJobs))
			for i, ev := range aJobs {
				aIDs[i] = ev.id
			}

			control := newTenantHarness(t, table)
			ctrlStatus, ctrlStep := runNoisy(t, control, aJobs, aIDs, -1)

			mixed := append(append([]tenantEvent(nil), aJobs...), bJobs...)
			sort.SliceStable(mixed, func(i, j int) bool {
				if mixed[i].at != mixed[j].at {
					return mixed[i].at < mixed[j].at
				}
				return mixed[i].id < mixed[j].id
			})
			chaos := newTenantHarness(t, table)
			chaosStatus, chaosStep := runNoisy(t, chaos, mixed, aIDs, 130)
			stats := chaos.ctrl.TenantStats()
			defer func() {
				if t.Failed() {
					dumpTenantArtifact(t, fmt.Sprintf("noisy-seed%d", seed), stats, chaos.reg)
				}
			}()

			// (1) Terminal outcomes are untouched by the neighbor + crash.
			for _, id := range aIDs {
				if chaosStatus[id] != ctrlStatus[id] {
					t.Errorf("job %s: terminal status %q under chaos, %q in control",
						id, chaosStatus[id], ctrlStatus[id])
				}
			}
			// (2) Completion latency stays within the fair-share epsilon:
			// weight 4-of-5 entitles tenant a to >= 80%% of the machine, so
			// a 2x step bound plus 3 steps of restart slack is generous and
			// still catches starvation outright.
			for _, id := range aIDs {
				if limit := 2*ctrlStep[id] + 3; chaosStep[id] > limit {
					t.Errorf("job %s: finished at step %d under chaos, control %d (limit %d)",
						id, chaosStep[id], ctrlStep[id], limit)
				}
			}
			// (3) The neighbor really was noisy — and mostly turned away.
			// Stats are incarnation-local; the post-restart era alone must
			// still show a heavy, mostly-refused flood.
			b := stats["b"]
			if b.Submitted < len(bJobs)/3 {
				t.Errorf("tenant b post-restart submissions = %d, want >= %d", b.Submitted, len(bJobs)/3)
			}
			if b.Rejected == 0 || b.Rejected <= b.Admitted {
				t.Errorf("tenant b not meaningfully gated: %+v", b)
			}
			// (4) Ledger arithmetic and obs counters reconcile exactly.
			for name, st := range stats {
				if st.Submitted != st.Admitted+st.Rejected {
					t.Errorf("tenant %s ledger does not reconcile: %+v", name, st)
				}
				gateRej := st.RateRejections + st.ActiveCapRejections + st.QueueCapRejections
				if gateRej > st.Rejected {
					t.Errorf("tenant %s gate refusals exceed total: %+v", name, st)
				}
				for metric, want := range map[string]int{
					"submitted_total": st.Submitted,
					"admitted_total":  st.Admitted,
					"rejected_total":  st.Rejected,
				} {
					full := fmt.Sprintf("rotary_admission_tenant_%s{tenant=%q}", metric, name)
					got, ok := chaos.reg.Value(full)
					if !ok || int(got) != want {
						t.Errorf("obs %s = %v (present %v), ledger says %d", full, got, ok, want)
					}
				}
			}
		})
	}
}

// TestRouterTenantCoLocation checks the sharded path: the tenant id is
// the placement key, so every submission from one tenant lands on the
// same shard regardless of job id.
func TestRouterTenantCoLocation(t *testing.T) {
	base := t.TempDir()
	r := startTestRouter(t, RouterConfig{
		Socket: filepath.Join(base, "r.sock"),
		Shards: 3,
		Dir:    filepath.Join(base, "state"),
		Pace:   0,
	})
	c := dial(t, filepath.Join(base, "r.sock"))
	shard := -1
	for i := 0; i < 6; i++ {
		resp := c.call(t, Message{Op: "submit", ID: fmt.Sprintf("colo-%d", i), Tenant: "acme",
			Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"})
		if !resp.OK {
			t.Fatalf("submit %d: %+v", i, resp)
		}
		if shard == -1 {
			shard = resp.Shard
		} else if resp.Shard != shard {
			t.Fatalf("tenant acme split across shards %d and %d", shard, resp.Shard)
		}
	}
	// A different tenant is free to land elsewhere; an untenanted job
	// hashes by id. Neither must disturb acme's placement.
	if resp := c.call(t, Message{Op: "submit", ID: "colo-free", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK {
		t.Fatalf("untenanted submit: %+v", resp)
	}
	if resp := c.call(t, Message{Op: "submit", ID: "colo-7", Tenant: "acme",
		Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !resp.OK || resp.Shard != shard {
		t.Fatalf("tenant acme moved after interleaved traffic: %+v, want shard %d", resp, shard)
	}
	_ = r
}
