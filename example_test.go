package rotary_test

import (
	"fmt"

	"rotary"
)

// Parsing the Fig. 4 completion-criteria clause off a user command.
func Example_parseCriteria() {
	cmd, crit, err := rotary.ParseCriteria(
		"TRAIN RESNET-18 ON CIFAR10 ACC MIN 90% WITHIN 25 EPOCHS")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(cmd)
	fmt.Println(crit.Kind, crit)
	// Output:
	// TRAIN RESNET-18 ON CIFAR10
	// accuracy ACC MIN 90% WITHIN 25 epochs
}

// Running one arbitrated training job end to end on the simulated
// cluster. The convergence-oriented criterion completes the job once the
// per-epoch accuracy delta falls below 0.01.
func Example_dltJob() {
	repo := rotary.NewRepository()
	sched := rotary.NewRotaryDLT(0.5, rotary.NewTEE(repo, 3), rotary.NewTME(repo, 3))
	exec := rotary.NewDLTExecutor(rotary.DefaultDLTExecConfig(), sched, repo)

	trainer, _ := rotary.NewTrainer(rotary.DLTConfig{
		Model: "mobilenet", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 7,
	})
	crit, _ := rotary.NewConvergenceCriteria("ACC", 0.01,
		rotary.Deadline{Value: 30, Unit: rotary.Epochs})
	job, _ := rotary.NewDLTJob("demo", trainer, crit)
	exec.Submit(job, 0)
	if err := exec.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(job.Status(), job.ConvergedAtEpoch() > 0)
	// Output: attained true
}

// The Table I and Table II workload generators sample the paper's
// parameter spaces deterministically.
func Example_workloads() {
	aqp := rotary.GenerateAQPWorkload(rotary.DefaultAQPWorkload(3, 1))
	for _, s := range aqp {
		fmt.Printf("%s class=%s acc=%.0f%% deadline=%.0fs\n",
			s.Query, s.Class, s.Accuracy*100, s.DeadlineSecs)
	}
	// Output:
	// q21 class=heavy acc=55% deadline=3060s
	// q22 class=light acc=75% deadline=360s
	// q18 class=heavy acc=85% deadline=3060s
}
