package baselines

import (
	"testing"

	"rotary/internal/cluster"
	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

// buildAQPJobs makes three pending jobs with distinct deadlines and
// classes via the workload builder.
func buildAQPJobs(t *testing.T) (*core.AQPContext, map[string]*core.AQPJob) {
	t.Helper()
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	mk := func(id, query string, cls tpch.Class, acc, deadline float64) *core.AQPJob {
		j, err := workload.BuildAQPJob(cat, workload.AQPSpec{
			ID: id, Query: query, Class: cls, Accuracy: acc,
			DeadlineSecs: deadline, BatchRows: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	jobs := map[string]*core.AQPJob{
		"late":  mk("late", "q7", tpch.Heavy, 0.8, 3000),
		"soon":  mk("soon", "q6", tpch.Light, 0.8, 400),
		"mid":   mk("mid", "q3", tpch.Medium, 0.8, 1500),
		"heavy": mk("heavy", "q9", tpch.Heavy, 0.9, 2500),
	}
	ctx := &core.AQPContext{
		Now:          0,
		Pending:      []*core.AQPJob{jobs["late"], jobs["soon"], jobs["mid"], jobs["heavy"]},
		FreeThreads:  6,
		TotalThreads: 6,
		FreeMemMB:    1e6,
		TotalMemMB:   1e6,
	}
	return ctx, jobs
}

func TestEDFRanksByDeadline(t *testing.T) {
	ctx, _ := buildAQPJobs(t)
	grants := EDFAQP{}.Assign(ctx)
	if len(grants) == 0 {
		t.Fatal("no grants")
	}
	if grants[0].Job.ID() != "soon" {
		t.Errorf("EDF granted %s first, want soon", grants[0].Job.ID())
	}
	// Extras are greedy: the earliest deadline is filled toward the cap.
	if grants[0].Threads < grants[len(grants)-1].Threads {
		t.Errorf("EDF extras not concentrated on the top job: %d vs %d",
			grants[0].Threads, grants[len(grants)-1].Threads)
	}
}

func TestRoundRobinOneThreadEach(t *testing.T) {
	ctx, _ := buildAQPJobs(t)
	grants := RoundRobinAQP{}.Assign(ctx)
	if len(grants) != 4 {
		t.Fatalf("%d grants, want 4", len(grants))
	}
	for _, g := range grants {
		if g.Threads != 1 {
			t.Errorf("round-robin granted %d threads to %s", g.Threads, g.Job.ID())
		}
	}
}

func TestReLAQSIgnoresMemory(t *testing.T) {
	ctx, _ := buildAQPJobs(t)
	ctx.FreeMemMB = 0 // no memory left at all
	grants := ReLAQS{}.Assign(ctx)
	if len(grants) == 0 {
		t.Fatal("ReLAQS must not be blocked by memory — it only schedules cores")
	}
	for _, g := range grants {
		if g.ReserveMemMB != 0 {
			t.Errorf("ReLAQS reserved %v MB", g.ReserveMemMB)
		}
	}
}

func TestGrantsNeverExceedFreeThreads(t *testing.T) {
	ctx, _ := buildAQPJobs(t)
	for _, sched := range []core.AQPScheduler{EDFAQP{}, LAFAQP{}, ReLAQS{}, RoundRobinAQP{}} {
		total := 0
		for _, g := range sched.Assign(ctx) {
			total += g.Threads
		}
		if total > ctx.FreeThreads {
			t.Errorf("%s granted %d threads of %d free", sched.Name(), total, ctx.FreeThreads)
		}
	}
}

func buildDLTJobs(t *testing.T) *core.DLTContext {
	t.Helper()
	mk := func(id string, crit criteria.Criteria) *core.DLTJob {
		trainer, err := dlt.NewJob(dlt.Config{
			Model: "mobilenet", Dataset: "cifar10", BatchSize: 16,
			Optimizer: "sgd", LR: 0.01, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		j, err := core.NewDLTJob(id, trainer, crit)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	run5, _ := criteria.NewRuntime(criteria.Deadline{Value: 5, Unit: criteria.Epochs})
	run50, _ := criteria.NewRuntime(criteria.Deadline{Value: 50, Unit: criteria.Epochs})
	convBig, _ := criteria.NewConvergence("ACC", 0.05, criteria.Deadline{Value: 30, Unit: criteria.Epochs})
	convSmall, _ := criteria.NewConvergence("ACC", 0.0001, criteria.Deadline{Value: 30, Unit: criteria.Epochs})
	accLow, _ := criteria.NewAccuracy("ACC", 0.70, criteria.Deadline{Value: 30, Unit: criteria.Epochs})
	accHigh, _ := criteria.NewAccuracy("ACC", 0.92, criteria.Deadline{Value: 30, Unit: criteria.Epochs})
	return &core.DLTContext{
		Now: 0,
		Pending: []*core.DLTJob{
			mk("run50", run50), mk("run5", run5),
			mk("convSmall", convSmall), mk("convBig", convBig),
			mk("accHigh", accHigh), mk("accLow", accLow),
		},
		FreeGPUs: []cluster.GPU{{ID: 0, MemMB: 8192}},
	}
}

func TestSRFPlacesShortestRuntimeFirst(t *testing.T) {
	ctx := buildDLTJobs(t)
	p := SRF{}.Place(ctx)
	if len(p) != 1 || p[0].Job.ID() != "run5" {
		t.Fatalf("SRF placed %v, want run5", idsOf(p))
	}
}

func TestBCFPlacesBiggestConvergenceFirst(t *testing.T) {
	ctx := buildDLTJobs(t)
	p := BCF{}.Place(ctx)
	if len(p) != 1 || p[0].Job.ID() != "convBig" {
		t.Fatalf("BCF placed %v, want convBig", idsOf(p))
	}
}

func TestLAFDLTPlacesLowestAccuracyFirst(t *testing.T) {
	ctx := buildDLTJobs(t)
	p := LAFDLT{}.Place(ctx)
	if len(p) != 1 || p[0].Job.ID() != "accLow" {
		t.Fatalf("LAF placed %v, want accLow", idsOf(p))
	}
}

func TestDLTBaselinesRespectDeviceMemory(t *testing.T) {
	ctx := buildDLTJobs(t)
	ctx.FreeGPUs = []cluster.GPU{{ID: 0, MemMB: 1}} // nothing fits
	for _, sched := range []core.DLTScheduler{SRF{}, BCF{}, LAFDLT{}} {
		if p := sched.Place(ctx); len(p) != 0 {
			t.Errorf("%s placed %v on a 1 MB device", sched.Name(), idsOf(p))
		}
	}
}

func idsOf(ps []core.DLTPlacement) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Job.ID()
	}
	return out
}

func TestRandomRotaryUsesRandomEstimates(t *testing.T) {
	sched := RandomRotaryAQP(sim.NewRand(3))
	ctx, _ := buildAQPJobs(t)
	if grants := sched.Assign(ctx); len(grants) == 0 {
		t.Fatal("random-estimator Rotary produced no grants")
	}
}
