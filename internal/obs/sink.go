package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// TraceRecord is the sink-facing form of one arbitration trace event. At
// is virtual seconds; Seq is the emitting tracer's monotone sequence
// number, so downstream consumers can detect gaps when the in-memory
// ring drops events.
type TraceRecord struct {
	Seq     uint64  `json:"seq"`
	At      float64 `json:"at"`
	Kind    string  `json:"kind"`
	Job     string  `json:"job,omitempty"`
	Tenant  string  `json:"tenant,omitempty"`
	Threads int     `json:"threads,omitempty"`
	Device  int     `json:"device,omitempty"`
	Detail  string  `json:"detail,omitempty"`
}

// TraceSink receives a stream of trace records. Implementations must be
// safe for concurrent use; WriteTrace should be cheap (buffered) and
// Flush must force everything written so far to the underlying medium.
type TraceSink interface {
	WriteTrace(TraceRecord) error
	Flush() error
}

// JSONLSink streams trace records as one JSON object per line through a
// buffered writer, flushing every flushEvery records (and on Flush/Close).
// Errors are sticky: after the first write failure every subsequent call
// returns the same error and the sink stops writing.
type JSONLSink struct {
	mu         sync.Mutex
	w          *bufio.Writer
	closer     io.Closer
	flushEvery int
	pending    int
	written    int64
	err        error
}

// NewJSONLSink wraps w. flushEvery <= 0 selects the default of 64
// records between flushes.
func NewJSONLSink(w io.Writer, flushEvery int) *JSONLSink {
	if flushEvery <= 0 {
		flushEvery = 64
	}
	s := &JSONLSink{w: bufio.NewWriter(w), flushEvery: flushEvery}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// OpenJSONLSink creates (truncating) path and returns a sink writing to it.
func OpenJSONLSink(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f, 0), nil
}

// WriteTrace appends one record.
func (s *JSONLSink) WriteTrace(rec TraceRecord) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
		return err
	}
	s.written++
	s.pending++
	if s.pending >= s.flushEvery {
		s.pending = 0
		if err := s.w.Flush(); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// Flush forces buffered records to the underlying writer.
func (s *JSONLSink) Flush() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.pending = 0
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// Written reports the number of records accepted so far.
func (s *JSONLSink) Written() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.written
}

// Close flushes and, if the underlying writer is an io.Closer (as with
// OpenJSONLSink), closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	c := s.closer
	s.closer = nil
	s.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
