package tpch

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"rotary/internal/aqp"
	"rotary/internal/stream"
)

// Class is the Table I memory-consumption grouping of the 22 queries.
type Class int

// Query classes from Table I.
const (
	Light Class = iota
	Medium
	Heavy
)

// String returns the Table I spelling of c.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case Medium:
		return "medium"
	case Heavy:
		return "heavy"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Table I: "According to the observed memory consumption of queries, we
// categorize the TPC-H queries into three groups."
var queryClasses = map[string]Class{
	"q1": Light, "q2": Light, "q4": Light, "q6": Light, "q10": Light,
	"q11": Light, "q12": Light, "q13": Light, "q14": Light, "q15": Light,
	"q16": Light, "q19": Light, "q22": Light,
	"q3": Medium, "q5": Medium, "q8": Medium, "q17": Medium, "q20": Medium,
	"q7": Heavy, "q9": Heavy, "q18": Heavy, "q21": Heavy,
}

// AllQueries lists the 22 query names in order.
var AllQueries = []string{
	"q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8", "q9", "q10", "q11",
	"q12", "q13", "q14", "q15", "q16", "q17", "q18", "q19", "q20", "q21", "q22",
}

// QueriesOfClass returns the query names in class c, in canonical order.
func QueriesOfClass(c Class) []string {
	var out []string
	for _, q := range AllQueries {
		if queryClasses[q] == c {
			out = append(out, q)
		}
	}
	return out
}

// ClassOf reports the Table I class of a query name.
func ClassOf(name string) (Class, error) {
	c, ok := queryClasses[name]
	if !ok {
		return 0, fmt.Errorf("tpch: unknown query %q", name)
	}
	return c, nil
}

// Single-thread full-pass virtual runtimes per class, in seconds. These
// anchor the cost model so that Table I's deadline spaces (light
// 360-900 s, medium 1080-2160 s, heavy 1440-3060 s) are meaningful at any
// scale factor: a light query alone on one thread takes ~900 virtual
// seconds to see all its data, a heavy one ~3600 s, matching the relative
// progress rates of Fig. 1a (Q19 ≈ 3× faster than Q7, Q5 in between).
var classFullPassSecs = map[Class]float64{Light: 900, Medium: 2100, Heavy: 3600}

// Per-query runtime jitter within a class, so queries in the same class
// are not clones (deterministic, loosely reflecting plan complexity).
var queryCostFactor = map[string]float64{
	"q1": 1.0, "q2": 0.7, "q3": 1.0, "q4": 0.9, "q5": 1.1, "q6": 0.6,
	"q7": 1.0, "q8": 0.95, "q9": 1.15, "q10": 1.0, "q11": 0.7, "q12": 0.85,
	"q13": 0.8, "q14": 0.75, "q15": 0.9, "q16": 0.8, "q17": 1.05, "q18": 1.1,
	"q19": 0.8, "q20": 0.9, "q21": 1.2, "q22": 0.65,
}

// residentRowBytes reflects a Spark-like in-memory row footprint for the
// build-side hash indexes (JVM object headers, boxed fields); it is what
// separates the Table I memory classes.
const residentRowBytes = 200

// Catalog binds a generated dataset to runnable online queries: shared
// shuffled fact topics, resident dimension indexes, per-query cost and
// memory metadata, and a lazily computed ground-truth cache (the final
// aggregates αf that the accuracy αc/αf compares against).
type Catalog struct {
	ds *Dataset

	lineitems *stream.Topic[Lineitem]
	orders    *stream.Topic[Order]
	partsupps *stream.Topic[PartSupp]
	customers *stream.Topic[Customer]

	supplyCost    map[int64]float64 // (partKey<<32|suppKey) -> cost, built on demand
	custHasOrders []bool
	avgPosBal     float64

	mu    sync.Mutex
	truth map[string]aqp.Snapshot
	stats []TableStats
}

// NewCatalog indexes ds and prepares the fact topics with delivery order
// shuffled under seed (each batch is then a uniform progressive sample).
func NewCatalog(ds *Dataset, seed uint64) *Catalog {
	c := &Catalog{
		ds:        ds,
		lineitems: stream.NewShuffledTopic("lineitem", ds.Lineitems, 4, seed^0x11),
		orders:    stream.NewShuffledTopic("orders", ds.Orders, 4, seed^0x22),
		partsupps: stream.NewShuffledTopic("partsupp", ds.PartSupps, 4, seed^0x33),
		customers: stream.NewShuffledTopic("customer", ds.Customers, 4, seed^0x44),
		truth:     make(map[string]aqp.Snapshot),
	}
	c.custHasOrders = make([]bool, len(ds.Customers)+1)
	for i := range ds.Orders {
		c.custHasOrders[ds.Orders[i].CustKey] = true
	}
	var sum float64
	var n int
	for i := range ds.Customers {
		if b := ds.Customers[i].AcctBal; b > 0 {
			sum += b
			n++
		}
	}
	if n > 0 {
		c.avgPosBal = sum / float64(n)
	}
	return c
}

// Dataset returns the catalog's underlying dataset.
func (c *Catalog) Dataset() *Dataset { return c.ds }

func (c *Catalog) supplyCostIndex() map[int64]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.supplyCost == nil {
		idx := make(map[int64]float64, len(c.ds.PartSupps))
		for i := range c.ds.PartSupps {
			ps := &c.ds.PartSupps[i]
			idx[int64(ps.PartKey)<<32|int64(ps.SuppKey)] = ps.SupplyCost
		}
		c.supplyCost = idx
	}
	return c.supplyCost
}

// Dimension lookups; keys are dense 1..N by construction.

func (c *Catalog) order(key int32) *Order       { return &c.ds.Orders[key-1] }
func (c *Catalog) part(key int32) *Part         { return &c.ds.Parts[key-1] }
func (c *Catalog) supplier(key int32) *Supplier { return &c.ds.Suppliers[key-1] }
func (c *Catalog) customer(key int32) *Customer { return &c.ds.Customers[key-1] }
func (c *Catalog) nationName(key int32) string  { return c.ds.Nations[key].Name }
func (c *Catalog) regionOfNation(key int32) string {
	return c.ds.Regions[c.ds.Nations[key].RegionKey].Name
}

// FactRows reports how many fact rows the named query streams, which
// together with CostModel determines its isolated full-pass runtime.
func (c *Catalog) FactRows(name string) (int, error) {
	switch name {
	case "q13", "q22":
		if name == "q22" {
			return c.customers.Len(), nil
		}
		return c.orders.Len(), nil
	case "q2", "q11", "q16", "q20":
		return c.partsupps.Len(), nil
	default:
		if _, err := ClassOf(name); err != nil {
			return 0, err
		}
		return c.lineitems.Len(), nil
	}
}

// CostModel returns the virtual-time cost model of the named query,
// anchored so a single-thread full pass takes the class runtime.
func (c *Catalog) CostModel(name string) (aqp.CostModel, error) {
	cls, err := ClassOf(name)
	if err != nil {
		return aqp.CostModel{}, err
	}
	rows, err := c.FactRows(name)
	if err != nil {
		return aqp.CostModel{}, err
	}
	if rows == 0 {
		rows = 1
	}
	full := classFullPassSecs[cls] * queryCostFactor[name]
	return aqp.CostModel{SecsPerRow: full / float64(rows), FixedPerBatch: 0.05}, nil
}

// MemoryProfile returns the CBO-style memory shape of the named query,
// derived from table statistics as §IV-A describes.
func (c *Catalog) MemoryProfile(name string) (aqp.MemoryProfile, error) {
	nOrders := int64(len(c.ds.Orders))
	nCust := int64(len(c.ds.Customers))
	nSupp := int64(len(c.ds.Suppliers))
	nPart := int64(len(c.ds.Parts))
	nPS := int64(len(c.ds.PartSupps))
	p := aqp.MemoryProfile{ResidentRowBytes: residentRowBytes, GroupBytes: 320, AuxKeyBytes: 64}
	switch name {
	case "q1":
		p.ProjectedGroups = 6
	case "q6", "q14", "q19":
		p.ResidentRows = nPart
		p.ProjectedGroups = 1
	case "q2", "q16", "q20":
		p.ResidentRows = nPart + nSupp
		p.ProjectedGroups = 32
	case "q11":
		p.ResidentRows = nSupp
		p.ProjectedGroups = 1
	case "q12":
		p.ResidentRows = nOrders / 4 // order-priority column projection
		p.ProjectedGroups = 2
	case "q4":
		p.ResidentRows = nOrders / 4
		p.ProjectedGroups = 5
		p.ProjectedAuxKeys = nOrders / 26 // one quarter of one year
	case "q13":
		p.ResidentRows = nCust
		p.ProjectedGroups = 25
	case "q22":
		p.ResidentRows = nCust / 8 // has-orders bitmap + balances
		p.ProjectedGroups = 7
	case "q10":
		p.ResidentRows = nOrders + nCust
		p.ProjectedGroups = 25
	case "q15":
		p.ResidentRows = nSupp
		p.ProjectedGroups = 25
	case "q3":
		p.ResidentRows = nOrders + nCust
		p.ProjectedGroups = 5
	case "q5":
		p.ResidentRows = nOrders + nCust + nSupp
		p.ProjectedGroups = 5
	case "q8":
		p.ResidentRows = nOrders + nCust + nSupp + nPart
		p.ProjectedGroups = 2
	case "q17":
		p.ResidentRows = nPart
		p.ProjectedAuxKeys = nPart / 500 // brand×container selectivity
		p.ProjectedGroups = 1
	case "q7":
		p.ResidentRows = nOrders + nCust + nSupp
		p.ProjectedGroups = 4
		p.ProjectedAuxKeys = nOrders / 3
	case "q9":
		p.ResidentRows = nPS + nOrders + nSupp + nPart
		p.ProjectedGroups = 25 * 7
	case "q18":
		p.ResidentRows = nOrders
		p.ProjectedAuxKeys = nOrders
		p.ProjectedGroups = 1
	case "q21":
		p.ResidentRows = nOrders + nSupp
		p.ProjectedAuxKeys = nOrders
		p.AuxKeyBytes = 96
		p.ProjectedGroups = 1
	default:
		return aqp.MemoryProfile{}, fmt.Errorf("tpch: unknown query %q", name)
	}
	return p, nil
}

// NewQuery builds a fresh runnable instance of the named query with its
// own stream consumer and the ground-truth final answer attached (computed
// once per catalog and cached). Every call returns an independent job.
func (c *Catalog) NewQuery(name string) (aqp.OnlineQuery, error) {
	q, err := c.build(name)
	if err != nil {
		return nil, err
	}
	truth, err := c.GroundTruth(name)
	if err != nil {
		return nil, err
	}
	q.setFinal(truth)
	return q.online(), nil
}

// GroundTruth returns the final aggregates of the named query over the
// full dataset, computing and caching them on first use.
func (c *Catalog) GroundTruth(name string) (aqp.Snapshot, error) {
	c.mu.Lock()
	if t, ok := c.truth[name]; ok {
		c.mu.Unlock()
		return t, nil
	}
	c.mu.Unlock()

	q, err := c.build(name)
	if err != nil {
		return aqp.Snapshot{}, err
	}
	oq := q.online()
	for {
		rows, _ := oq.ProcessBatch(65536, 1)
		if rows == 0 {
			break
		}
	}
	t := oq.Snapshot()

	c.mu.Lock()
	c.truth[name] = t
	c.mu.Unlock()
	return t, nil
}

// built wraps the type-erased query under construction.
type built interface {
	online() aqp.OnlineQuery
	setFinal(aqp.Snapshot)
}

type builtQuery[T any] struct{ r *aqp.Running[T] }

func (b builtQuery[T]) online() aqp.OnlineQuery { return b.r }
func (b builtQuery[T]) setFinal(s aqp.Snapshot) { b.r.SetFinal(s) }

func (c *Catalog) lineQuery(name string, specs []aqp.AggSpec, proc aqp.Processor[Lineitem]) (built, error) {
	cm, err := c.CostModel(name)
	if err != nil {
		return nil, err
	}
	return builtQuery[Lineitem]{aqp.NewRunning(name, stream.NewConsumer(c.lineitems), specs, proc, cm)}, nil
}

func (c *Catalog) orderQuery(name string, specs []aqp.AggSpec, proc aqp.Processor[Order]) (built, error) {
	cm, err := c.CostModel(name)
	if err != nil {
		return nil, err
	}
	return builtQuery[Order]{aqp.NewRunning(name, stream.NewConsumer(c.orders), specs, proc, cm)}, nil
}

func (c *Catalog) psQuery(name string, specs []aqp.AggSpec, proc aqp.Processor[PartSupp]) (built, error) {
	cm, err := c.CostModel(name)
	if err != nil {
		return nil, err
	}
	return builtQuery[PartSupp]{aqp.NewRunning(name, stream.NewConsumer(c.partsupps), specs, proc, cm)}, nil
}

func (c *Catalog) custQuery(name string, specs []aqp.AggSpec, proc aqp.Processor[Customer]) (built, error) {
	cm, err := c.CostModel(name)
	if err != nil {
		return nil, err
	}
	return builtQuery[Customer]{aqp.NewRunning(name, stream.NewConsumer(c.customers), specs, proc, cm)}, nil
}

func (c *Catalog) build(name string) (built, error) {
	switch name {
	case "q1":
		return c.buildQ1()
	case "q2":
		return c.buildQ2()
	case "q3":
		return c.buildQ3()
	case "q4":
		return c.buildQ4()
	case "q5":
		return c.buildQ5()
	case "q6":
		return c.buildQ6()
	case "q7":
		return c.buildQ7()
	case "q8":
		return c.buildQ8()
	case "q9":
		return c.buildQ9()
	case "q10":
		return c.buildQ10()
	case "q11":
		return c.buildQ11()
	case "q12":
		return c.buildQ12()
	case "q13":
		return c.buildQ13()
	case "q14":
		return c.buildQ14()
	case "q15":
		return c.buildQ15()
	case "q16":
		return c.buildQ16()
	case "q17":
		return c.buildQ17()
	case "q18":
		return c.buildQ18()
	case "q19":
		return c.buildQ19()
	case "q20":
		return c.buildQ20()
	case "q21":
		return c.buildQ21()
	case "q22":
		return c.buildQ22()
	default:
		return nil, fmt.Errorf("tpch: unknown query %q", name)
	}
}

// Q1: pricing summary report. Grouped running sums/averages over almost
// the whole lineitem table.
func (c *Catalog) buildQ1() (built, error) {
	cutoff := MakeDate(1998, 9, 2)
	specs := []aqp.AggSpec{
		{Name: "sum_qty", Kind: aqp.Sum}, {Name: "sum_base_price", Kind: aqp.Sum},
		{Name: "sum_disc_price", Kind: aqp.Sum}, {Name: "sum_charge", Kind: aqp.Sum},
		{Name: "avg_qty", Kind: aqp.Avg}, {Name: "avg_price", Kind: aqp.Avg},
		{Name: "avg_disc", Kind: aqp.Avg}, {Name: "count_order", Kind: aqp.Count},
	}
	return c.lineQuery("q1", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate > cutoff {
					continue
				}
				disc := l.ExtendedPrice * (1 - l.Discount)
				gt.Update(string([]byte{l.ReturnFlag, '|', l.LineStatus}),
					l.Quantity, l.ExtendedPrice, disc, disc*(1+l.Tax),
					l.Quantity, l.ExtendedPrice, l.Discount, 1)
			}
		},
	})
}

// Q2: minimum-cost supplier. Streams partsupp against resident part and
// supplier indexes.
func (c *Catalog) buildQ2() (built, error) {
	specs := []aqp.AggSpec{
		{Name: "min_supplycost", Kind: aqp.Min},
		{Name: "count_candidates", Kind: aqp.Count},
		{Name: "avg_acctbal", Kind: aqp.Avg},
	}
	return c.psQuery("q2", specs, aqp.Processor[PartSupp]{
		Process: func(rows []PartSupp, gt *aqp.GroupTable) {
			for i := range rows {
				ps := &rows[i]
				p := c.part(ps.PartKey)
				if p.Size != 15 || !strings.HasSuffix(p.Type, "BRASS") {
					continue
				}
				s := c.supplier(ps.SuppKey)
				if c.regionOfNation(s.NationKey) != "EUROPE" {
					continue
				}
				gt.Update("europe-brass", ps.SupplyCost, 1, s.AcctBal)
			}
		},
	})
}

// Q3: shipping-priority revenue, grouped by order priority (the paper's
// online-aggregation adaptation of the top-10 order listing).
func (c *Catalog) buildQ3() (built, error) {
	pivot := MakeDate(1995, 3, 15)
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.lineQuery("q3", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate <= pivot {
					continue
				}
				o := c.order(l.OrderKey)
				if o.OrderDate >= pivot {
					continue
				}
				if c.customer(o.CustKey).MktSegment != "BUILDING" {
					continue
				}
				gt.Update(o.OrderPriority, l.ExtendedPrice*(1-l.Discount), 1)
			}
		},
	})
}

// Q4: order-priority checking. Counts distinct late-line orders in a
// quarter; the first-seen set is auxiliary checkpointed state.
func (c *Catalog) buildQ4() (built, error) {
	lo, hi := MakeDate(1993, 7, 1), MakeDate(1993, 10, 1)
	specs := []aqp.AggSpec{{Name: "order_count", Kind: aqp.Count}}
	seen := make(map[int32]bool)
	return c.lineQuery("q4", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.CommitDate >= l.ReceiptDate || seen[l.OrderKey] {
					continue
				}
				o := c.order(l.OrderKey)
				if o.OrderDate < lo || o.OrderDate >= hi {
					continue
				}
				seen[l.OrderKey] = true
				gt.Update(o.OrderPriority, 1)
			}
		},
		SaveAux:  func() (json.RawMessage, error) { return json.Marshal(seen) },
		LoadAux:  func(m json.RawMessage) error { seen = make(map[int32]bool); return json.Unmarshal(m, &seen) },
		AuxBytes: func() int64 { return int64(len(seen)) * 16 },
	})
}

// Q5: local-supplier volume in ASIA for 1994, grouped by nation.
func (c *Catalog) buildQ5() (built, error) {
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}}
	return c.lineQuery("q5", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				o := c.order(l.OrderKey)
				if o.OrderDate < lo || o.OrderDate >= hi {
					continue
				}
				s := c.supplier(l.SuppKey)
				if c.regionOfNation(s.NationKey) != "ASIA" {
					continue
				}
				if c.customer(o.CustKey).NationKey != s.NationKey {
					continue
				}
				gt.Update(c.nationName(s.NationKey), l.ExtendedPrice*(1-l.Discount))
			}
		},
	})
}

// Q6: forecasting revenue change — the canonical single-table online
// aggregation.
func (c *Catalog) buildQ6() (built, error) {
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.lineQuery("q6", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate < lo || l.ShipDate >= hi ||
					l.Discount < 0.05 || l.Discount > 0.07 || l.Quantity >= 24 {
					continue
				}
				gt.Update("all", l.ExtendedPrice*l.Discount, 1)
			}
		},
	})
}

// Q7: volume shipping between FRANCE and GERMANY, grouped by nation pair
// and year.
func (c *Catalog) buildQ7() (built, error) {
	lo, hi := MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)
	specs := []aqp.AggSpec{{Name: "sum_volume", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.lineQuery("q7", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate < lo || l.ShipDate >= hi {
					continue
				}
				sn := c.nationName(c.supplier(l.SuppKey).NationKey)
				if sn != "FRANCE" && sn != "GERMANY" {
					continue
				}
				o := c.order(l.OrderKey)
				cn := c.nationName(c.customer(o.CustKey).NationKey)
				if !(sn == "FRANCE" && cn == "GERMANY") && !(sn == "GERMANY" && cn == "FRANCE") {
					continue
				}
				gt.Update(fmt.Sprintf("%s|%s|%d", sn, cn, l.ShipDate.Year()),
					l.ExtendedPrice*(1-l.Discount), 1)
			}
		},
	})
}

// Q8: national market share of BRAZIL within AMERICA for a part type,
// grouped by year.
func (c *Catalog) buildQ8() (built, error) {
	lo, hi := MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)
	specs := []aqp.AggSpec{{Name: "sum_brazil_volume", Kind: aqp.Sum}, {Name: "sum_volume", Kind: aqp.Sum}}
	return c.lineQuery("q8", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if c.part(l.PartKey).Type != "ECONOMY ANODIZED STEEL" {
					continue
				}
				o := c.order(l.OrderKey)
				if o.OrderDate < lo || o.OrderDate >= hi {
					continue
				}
				if c.regionOfNation(c.customer(o.CustKey).NationKey) != "AMERICA" {
					continue
				}
				vol := l.ExtendedPrice * (1 - l.Discount)
				brazil := 0.0
				if c.nationName(c.supplier(l.SuppKey).NationKey) == "BRAZIL" {
					brazil = vol
				}
				gt.Update(fmt.Sprintf("%d", o.OrderDate.Year()), brazil, vol)
			}
		},
	})
}

// Q9: product-type profit, grouped by supplier nation and year. The
// resident partsupp cost index is what makes this query heavy.
func (c *Catalog) buildQ9() (built, error) {
	idx := c.supplyCostIndex()
	specs := []aqp.AggSpec{{Name: "sum_profit", Kind: aqp.Sum}}
	return c.lineQuery("q9", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if !strings.Contains(c.part(l.PartKey).Name, "green") {
					continue
				}
				cost := idx[int64(l.PartKey)<<32|int64(l.SuppKey)]
				amount := l.ExtendedPrice*(1-l.Discount) - cost*l.Quantity
				nation := c.nationName(c.supplier(l.SuppKey).NationKey)
				gt.Update(fmt.Sprintf("%s|%d", nation, c.order(l.OrderKey).OrderDate.Year()), amount)
			}
		},
	})
}

// Q10: returned-item revenue by customer nation for one quarter.
func (c *Catalog) buildQ10() (built, error) {
	lo, hi := MakeDate(1993, 10, 1), MakeDate(1994, 1, 1)
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.lineQuery("q10", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ReturnFlag != 'R' {
					continue
				}
				o := c.order(l.OrderKey)
				if o.OrderDate < lo || o.OrderDate >= hi {
					continue
				}
				gt.Update(c.nationName(c.customer(o.CustKey).NationKey),
					l.ExtendedPrice*(1-l.Discount), 1)
			}
		},
	})
}

// Q11: important stock identification for GERMANY.
func (c *Catalog) buildQ11() (built, error) {
	specs := []aqp.AggSpec{{Name: "sum_value", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.psQuery("q11", specs, aqp.Processor[PartSupp]{
		Process: func(rows []PartSupp, gt *aqp.GroupTable) {
			for i := range rows {
				ps := &rows[i]
				if c.nationName(c.supplier(ps.SuppKey).NationKey) != "GERMANY" {
					continue
				}
				gt.Update("germany", ps.SupplyCost*float64(ps.AvailQty), 1)
			}
		},
	})
}

// Q12: shipping-mode priority counts for 1994.
func (c *Catalog) buildQ12() (built, error) {
	lo, hi := MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)
	specs := []aqp.AggSpec{{Name: "high_line_count", Kind: aqp.Sum}, {Name: "low_line_count", Kind: aqp.Sum}}
	return c.lineQuery("q12", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipMode != "MAIL" && l.ShipMode != "SHIP" {
					continue
				}
				if l.CommitDate >= l.ReceiptDate || l.ShipDate >= l.CommitDate ||
					l.ReceiptDate < lo || l.ReceiptDate >= hi {
					continue
				}
				high, low := 0.0, 1.0
				switch c.order(l.OrderKey).OrderPriority {
				case "1-URGENT", "2-HIGH":
					high, low = 1, 0
				}
				gt.Update(l.ShipMode, high, low)
			}
		},
	})
}

// Q13: customer order distribution (streamed over orders, grouped by the
// customer's nation — the online-aggregation adaptation of the count
// histogram).
func (c *Catalog) buildQ13() (built, error) {
	specs := []aqp.AggSpec{{Name: "count_orders", Kind: aqp.Count}, {Name: "avg_totalprice", Kind: aqp.Avg}}
	return c.orderQuery("q13", specs, aqp.Processor[Order]{
		Process: func(rows []Order, gt *aqp.GroupTable) {
			for i := range rows {
				o := &rows[i]
				if strings.Contains(o.Comment, "special") {
					continue
				}
				gt.Update(c.nationName(c.customer(o.CustKey).NationKey), 1, o.TotalPrice)
			}
		},
	})
}

// Q14: promotion-effect revenue for one month.
func (c *Catalog) buildQ14() (built, error) {
	lo, hi := MakeDate(1995, 9, 1), MakeDate(1995, 10, 1)
	specs := []aqp.AggSpec{{Name: "sum_promo_revenue", Kind: aqp.Sum}, {Name: "sum_revenue", Kind: aqp.Sum}}
	return c.lineQuery("q14", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate < lo || l.ShipDate >= hi {
					continue
				}
				rev := l.ExtendedPrice * (1 - l.Discount)
				promo := 0.0
				if strings.HasPrefix(c.part(l.PartKey).Type, "PROMO") {
					promo = rev
				}
				gt.Update("all", promo, rev)
			}
		},
	})
}

// Q15: top-supplier revenue for one quarter, grouped by supplier nation
// (the online adaptation of the per-supplier view).
func (c *Catalog) buildQ15() (built, error) {
	lo, hi := MakeDate(1996, 1, 1), MakeDate(1996, 4, 1)
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}, {Name: "max_line_revenue", Kind: aqp.Max}}
	return c.lineQuery("q15", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipDate < lo || l.ShipDate >= hi {
					continue
				}
				rev := l.ExtendedPrice * (1 - l.Discount)
				gt.Update(c.nationName(c.supplier(l.SuppKey).NationKey), rev, rev)
			}
		},
	})
}

// Q16: parts/supplier relationship counts by brand.
func (c *Catalog) buildQ16() (built, error) {
	sizes := map[int32]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	specs := []aqp.AggSpec{{Name: "supplier_cnt", Kind: aqp.Count}}
	return c.psQuery("q16", specs, aqp.Processor[PartSupp]{
		Process: func(rows []PartSupp, gt *aqp.GroupTable) {
			for i := range rows {
				ps := &rows[i]
				p := c.part(ps.PartKey)
				if p.Brand == "Brand#45" || strings.HasPrefix(p.Type, "MEDIUM POLISHED") || !sizes[p.Size] {
					continue
				}
				if strings.Contains(c.supplier(ps.SuppKey).Comment, "Customer Complaints") {
					continue
				}
				gt.Update(p.Brand, 1)
			}
		},
	})
}

// Q17: small-quantity-order revenue. The per-part running quantity
// averages are auxiliary checkpointed state (the streaming version of the
// correlated subquery).
func (c *Catalog) buildQ17() (built, error) {
	type pavg struct {
		Sum   float64 `json:"s"`
		Count int64   `json:"c"`
	}
	avgs := make(map[int32]*pavg)
	specs := []aqp.AggSpec{{Name: "sum_extendedprice", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	return c.lineQuery("q17", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				p := c.part(l.PartKey)
				// The container predicate is widened from "MED BOX" to the
				// MED family so the query stays non-empty at the tiny scale
				// factors used in tests.
				if p.Brand != "Brand#23" || !strings.HasPrefix(p.Container, "MED") {
					continue
				}
				a, ok := avgs[l.PartKey]
				if !ok {
					a = &pavg{}
					avgs[l.PartKey] = a
				}
				a.Sum += l.Quantity
				a.Count++
				if l.Quantity < 0.2*(a.Sum/float64(a.Count)) {
					gt.Update("all", l.ExtendedPrice, 1)
				}
			}
		},
		SaveAux: func() (json.RawMessage, error) { return json.Marshal(avgs) },
		LoadAux: func(m json.RawMessage) error {
			avgs = make(map[int32]*pavg)
			return json.Unmarshal(m, &avgs)
		},
		AuxBytes: func() int64 { return int64(len(avgs)) * 48 },
	})
}

// Q18: large-volume customers. Per-order quantity accumulation makes this
// the heaviest stateful query.
func (c *Catalog) buildQ18() (built, error) {
	type ostate struct {
		Qty   float64 `json:"q"`
		Added bool    `json:"a"`
	}
	acc := make(map[int32]*ostate)
	specs := []aqp.AggSpec{{Name: "count_orders", Kind: aqp.Count}, {Name: "sum_totalprice", Kind: aqp.Sum}}
	return c.lineQuery("q18", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				st, ok := acc[l.OrderKey]
				if !ok {
					st = &ostate{}
					acc[l.OrderKey] = st
				}
				st.Qty += l.Quantity
				if !st.Added && st.Qty > 300 {
					st.Added = true
					gt.Update("all", 1, c.order(l.OrderKey).TotalPrice)
				}
			}
		},
		SaveAux: func() (json.RawMessage, error) { return json.Marshal(acc) },
		LoadAux: func(m json.RawMessage) error {
			acc = make(map[int32]*ostate)
			return json.Unmarshal(m, &acc)
		},
		AuxBytes: func() int64 { return int64(len(acc)) * 48 },
	})
}

// Q19: discounted revenue under disjunctive brand/container/quantity
// predicates.
func (c *Catalog) buildQ19() (built, error) {
	specs := []aqp.AggSpec{{Name: "sum_revenue", Kind: aqp.Sum}, {Name: "count", Kind: aqp.Count}}
	match := func(p *Part, l *Lineitem) bool {
		switch {
		case p.Brand == "Brand#12" && strings.HasPrefix(p.Container, "SM") &&
			l.Quantity >= 1 && l.Quantity <= 11 && p.Size >= 1 && p.Size <= 5:
			return true
		case p.Brand == "Brand#23" && strings.HasPrefix(p.Container, "MED") &&
			l.Quantity >= 10 && l.Quantity <= 20 && p.Size >= 1 && p.Size <= 10:
			return true
		case p.Brand == "Brand#34" && strings.HasPrefix(p.Container, "LG") &&
			l.Quantity >= 20 && l.Quantity <= 30 && p.Size >= 1 && p.Size <= 15:
			return true
		}
		return false
	}
	return c.lineQuery("q19", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				if l.ShipMode != "AIR" && l.ShipMode != "REG AIR" {
					continue
				}
				if l.ShipInstruct != "DELIVER IN PERSON" {
					continue
				}
				if !match(c.part(l.PartKey), l) {
					continue
				}
				gt.Update("all", l.ExtendedPrice*(1-l.Discount), 1)
			}
		},
	})
}

// Q20: potential part promotion for CANADA.
func (c *Catalog) buildQ20() (built, error) {
	specs := []aqp.AggSpec{{Name: "count_pairs", Kind: aqp.Count}, {Name: "avg_availqty", Kind: aqp.Avg}}
	return c.psQuery("q20", specs, aqp.Processor[PartSupp]{
		Process: func(rows []PartSupp, gt *aqp.GroupTable) {
			for i := range rows {
				ps := &rows[i]
				if ps.AvailQty <= 1000 {
					continue
				}
				if !strings.HasPrefix(c.part(ps.PartKey).Name, "forest") {
					continue
				}
				if c.nationName(c.supplier(ps.SuppKey).NationKey) != "CANADA" {
					continue
				}
				gt.Update("canada-forest", 1, float64(ps.AvailQty))
			}
		},
	})
}

// Q21: suppliers who kept orders waiting. Per-order supplier/lateness
// state is evaluated once the order's lines have all streamed past.
func (c *Catalog) buildQ21() (built, error) {
	type o21 struct {
		Seen  int32   `json:"n"`
		Supps []int32 `json:"s"`
		Late  []int32 `json:"l"`
	}
	states := make(map[int32]*o21)
	specs := []aqp.AggSpec{{Name: "numwait", Kind: aqp.Count}}
	contains := func(s []int32, v int32) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	return c.lineQuery("q21", specs, aqp.Processor[Lineitem]{
		Process: func(rows []Lineitem, gt *aqp.GroupTable) {
			for i := range rows {
				l := &rows[i]
				o := c.order(l.OrderKey)
				if o.OrderStatus != 'F' {
					continue
				}
				st, ok := states[l.OrderKey]
				if !ok {
					st = &o21{}
					states[l.OrderKey] = st
				}
				st.Seen++
				if !contains(st.Supps, l.SuppKey) {
					st.Supps = append(st.Supps, l.SuppKey)
				}
				if l.ReceiptDate > l.CommitDate && !contains(st.Late, l.SuppKey) {
					st.Late = append(st.Late, l.SuppKey)
				}
				if st.Seen == o.LineCount {
					if len(st.Supps) > 1 && len(st.Late) == 1 {
						if c.nationName(c.supplier(st.Late[0]).NationKey) == "SAUDI ARABIA" {
							gt.Update("saudi-arabia", 1)
						}
					}
					delete(states, l.OrderKey)
				}
			}
		},
		SaveAux: func() (json.RawMessage, error) { return json.Marshal(states) },
		LoadAux: func(m json.RawMessage) error {
			states = make(map[int32]*o21)
			return json.Unmarshal(m, &states)
		},
		AuxBytes: func() int64 { return int64(len(states)) * 96 },
	})
}

// Q22: global sales opportunity — streamed over customers against the
// resident has-orders bitmap and the precomputed positive-balance average.
func (c *Catalog) buildQ22() (built, error) {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	threshold := c.avgPosBal
	specs := []aqp.AggSpec{{Name: "numcust", Kind: aqp.Count}, {Name: "totacctbal", Kind: aqp.Sum}}
	return c.custQuery("q22", specs, aqp.Processor[Customer]{
		Process: func(rows []Customer, gt *aqp.GroupTable) {
			for i := range rows {
				cu := &rows[i]
				code := cu.Phone[:2]
				if !codes[code] || cu.AcctBal <= threshold || c.custHasOrders[cu.CustKey] {
					continue
				}
				gt.Update(code, 1, cu.AcctBal)
			}
		},
	})
}
