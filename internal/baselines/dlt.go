package baselines

import (
	"sort"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
)

// dltPlace fills free GPUs from a ranked pending list, checking the
// analytic memory footprint (the baselines have no TME; they rely on the
// framework's knowledge of model size and batch, which in practice always
// fits the shrunk variants).
func dltPlace(ctx *core.DLTContext, ranked []*core.DLTJob) []core.DLTPlacement {
	var placements []core.DLTPlacement
	used := make(map[string]bool)
	for _, gpu := range ctx.FreeGPUs {
		for _, j := range ranked {
			if used[j.ID()] {
				continue
			}
			cfg := j.Trainer().Config()
			mb := dlt.PeakMemoryMB(j.Trainer().Spec(), cfg.BatchSize, cfg.Optimizer)
			if mb > gpu.MemMB {
				continue
			}
			placements = append(placements, core.DLTPlacement{Job: j, Device: gpu.ID, EstMemMB: mb})
			used[j.ID()] = true
			break
		}
	}
	return placements
}

// roundRobinRank orders the non-priority jobs least-recently-run first
// (fewest epochs, then arrival), the round-robin tail all three DLT
// baselines share.
func roundRobinRank(a, b *core.DLTJob) bool {
	if a.Epochs() != b.Epochs() {
		return a.Epochs() < b.Epochs()
	}
	return a.Arrival() < b.Arrival()
}

// SRF (Shortest Runtime First) "always runs the jobs with the shortest
// runtime completion criteria first and handles the other jobs following
// a round-robin strategy".
type SRF struct{}

// Name implements core.DLTScheduler.
func (SRF) Name() string { return "srf" }

// ArbiterProfile implements core.ProfiledDLTScheduler: the ranking
// reads immutable criteria plus the epoch/arrival state covered by the
// job fingerprints, so the decision cache may serve repeats.
func (SRF) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Place implements core.DLTScheduler.
func (SRF) Place(ctx *core.DLTContext) []core.DLTPlacement {
	ranked := append([]*core.DLTJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		ra, rb := a.Criteria().Kind == criteria.Runtime, b.Criteria().Kind == criteria.Runtime
		if ra != rb {
			return ra
		}
		if ra && rb {
			return a.MaxEpochs() < b.MaxEpochs()
		}
		return roundRobinRank(a, b)
	})
	return dltPlace(ctx, ranked)
}

// BCF (Biggest Convergence First) "always runs the jobs with the biggest
// convergence completion criteria first and handles the other jobs
// following a round-robin strategy". A bigger delta converges earlier, so
// BCF is the convergence analogue of shortest-first.
type BCF struct{}

// Name implements core.DLTScheduler.
func (BCF) Name() string { return "bcf" }

// ArbiterProfile implements core.ProfiledDLTScheduler (see SRF).
func (BCF) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Place implements core.DLTScheduler.
func (BCF) Place(ctx *core.DLTContext) []core.DLTPlacement {
	ranked := append([]*core.DLTJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		ca, cb := a.Criteria().Kind == criteria.Convergence, b.Criteria().Kind == criteria.Convergence
		if ca != cb {
			return ca
		}
		if ca && cb {
			return a.Criteria().Threshold > b.Criteria().Threshold
		}
		return roundRobinRank(a, b)
	})
	return dltPlace(ctx, ranked)
}

// LAFDLT (Lowest Accuracy First) "always runs the jobs with the lowest
// accuracy completion criteria first and handles the other jobs following
// a round-robin strategy".
type LAFDLT struct{}

// Name implements core.DLTScheduler.
func (LAFDLT) Name() string { return "laf" }

// ArbiterProfile implements core.ProfiledDLTScheduler (see SRF).
func (LAFDLT) ArbiterProfile() core.ArbiterProfile {
	return core.ArbiterProfile{Cachable: true}
}

// Place implements core.DLTScheduler.
func (LAFDLT) Place(ctx *core.DLTContext) []core.DLTPlacement {
	ranked := append([]*core.DLTJob(nil), ctx.Pending...)
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		aa, ab := a.Criteria().Kind == criteria.Accuracy, b.Criteria().Kind == criteria.Accuracy
		if aa != ab {
			return aa
		}
		if aa && ab {
			return a.Criteria().Threshold < b.Criteria().Threshold
		}
		return roundRobinRank(a, b)
	})
	return dltPlace(ctx, ranked)
}
