// Sharded multi-arbiter serving: a router fronting N shard workers, each
// a full durable arbiter (own engine, journal, checkpoint namespace) on
// a private socket. The router speaks the same JSON-line protocol as a
// single server, so existing clients work unchanged: submits are routed
// by consistent hash on the job id, status follows the job wherever it
// lives (including across migrations), and stats/metrics/health fan in
// across shards — per-shard metrics merge into one scrape under a
// shard="i" label. Router-only ops extend the protocol:
//
//	shards    the supervision report, one row per shard
//	migrate   move a job to another shard via checkpoint-carried handoff
//	retire    migrate a shard's jobs off, drain it, reroute around it
//
// Graceful degradation is the router's core robustness contract: every
// router→shard call is deadline-bounded (never a hang), and a down shard
// yields a typed shard-unavailable reply with a retry-after hint while
// the supervisor restarts it from its journal. Down shards are never
// rerouted around — their durable state lives in their journal — but
// retired shards are, by walking the hash ring to the next live shard.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/obs"
)

// RouterConfig parameterizes a sharded daemon.
type RouterConfig struct {
	// Socket is the router's public Unix socket. Shard i listens on
	// Socket + ".shard<i>" unless SocketFor overrides it.
	Socket string
	// Listeners are extra public listen specs ("tcp:host:port" or
	// "unix:/path") served alongside Socket, each speaking both codecs.
	// Shard sockets stay private Unix sockets regardless.
	Listeners []string
	// SocketFor overrides the per-shard socket path.
	SocketFor func(index int) string
	// Shards is the shard count (>= 1).
	Shards int
	// Dir is the durable-state root; shard i journals under Dir/shard-<i>.
	Dir string
	// Build constructs each shard's executor stack (boot and restart).
	Build ShardBuilder
	// Vnodes is the consistent-hash virtual-node count per shard.
	// Defaults to 64.
	Vnodes int
	// Pace, Tick, BatchRows apply to every shard (see Config).
	Pace      float64
	Tick      time.Duration
	BatchRows int
	// IngressDepth and IngressBatch apply to every shard's driver loop
	// (see Config): the bounded request ring and the group-commit window.
	IngressDepth int
	IngressBatch int
	// Obs is the router's own registry (request counters, shard gauges,
	// migration counts). Nil uses obs.Default().
	Obs *obs.Registry
	// ProbeInterval is the supervisor's health-probe period. Defaults to
	// 200ms.
	ProbeInterval time.Duration
	// RestartBackoff is the initial delay before a down shard's restart
	// attempt, doubling per failed attempt up to MaxRestartBackoff.
	// Defaults to 100ms / 5s.
	RestartBackoff    time.Duration
	MaxRestartBackoff time.Duration
	// RequestTimeout bounds every router→shard round trip. Defaults to 2s.
	RequestTimeout time.Duration
	// DiskIO, when set, supplies the disk-I/O layer each shard's durable
	// pair (journal + checkpoint store) routes through — the torture
	// harness's hook for dealing per-shard disk faults. Called at boot
	// and on every supervised restart; nil (or a nil return) means the
	// real filesystem.
	DiskIO func(index int) diskio.IO
	// HealProbeSecs and MaxHealFailures apply to every shard's journal
	// heal prober (see Config). Zero keeps the per-server defaults.
	HealProbeSecs   float64
	MaxHealFailures int
}

// Router is the sharded daemon's front end.
type Router struct {
	cfg    RouterConfig
	ring   *hashRing
	shards []*shardHandle
	reg    *obs.Registry
	met    *routerMetrics

	// locMu guards the routing state: the job-location overrides
	// (migrations and reroutes beat the ring), the submit id counter, and
	// the advance horizon restarted shards catch up to.
	locMu         sync.Mutex
	location      map[string]int
	nextID        int
	virtualTarget float64

	// migMu serializes migrations (including the ones retire runs).
	migMu sync.Mutex

	mu    sync.Mutex
	lns   []net.Listener
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup
	final Response

	ready       chan struct{}
	supStop     chan struct{}
	supDone     chan struct{}
	supStopOnce sync.Once
	closeOnce   sync.Once
}

// routerMetrics holds the router's own obs handles: per-op request
// counters plus per-shard supervision counters.
type routerMetrics struct {
	requests      map[string]*obs.Counter
	other         *obs.Counter
	forwards      []*obs.Counter
	unavailable   []*obs.Counter
	restarts      []*obs.Counter
	probeFailures []*obs.Counter
	shardUp       []*obs.Gauge
	migrations    *obs.Counter
}

// routerOps are the router's protocol operations (the single-server ops
// plus the sharding ops).
var routerOps = []string{"submit", "status", "stats", "advance", "metrics", "trace-tail", "health", "resume", "shards", "migrate", "retire", "drain"}

func newRouterMetrics(reg *obs.Registry, shards int) *routerMetrics {
	m := &routerMetrics{requests: make(map[string]*obs.Counter, len(routerOps)), migrations: reg.Counter("rotary_router_migrations_total", "jobs moved between shards by checkpoint-carried migration")}
	for _, op := range routerOps {
		m.requests[op] = reg.Counter(fmt.Sprintf("rotary_router_requests_total{op=%q}", op), "router requests by operation")
	}
	m.other = reg.Counter(`rotary_router_requests_total{op="other"}`, "router requests by operation")
	for i := 0; i < shards; i++ {
		l := fmt.Sprintf("{shard=%q}", strconv.Itoa(i))
		m.forwards = append(m.forwards, reg.Counter("rotary_router_forwards_total"+l, "requests forwarded to each shard"))
		m.unavailable = append(m.unavailable, reg.Counter("rotary_router_unavailable_total"+l, "requests answered shard-unavailable per shard"))
		m.restarts = append(m.restarts, reg.Counter("rotary_router_restarts_total"+l, "supervised shard restarts"))
		m.probeFailures = append(m.probeFailures, reg.Counter("rotary_router_probe_failures_total"+l, "health probes that found a shard dead or wedged"))
		m.shardUp = append(m.shardUp, reg.Gauge("rotary_router_shard_up"+l, "1 while the shard is running, 0 otherwise"))
	}
	return m
}

func (m *routerMetrics) count(op string) {
	if c, ok := m.requests[op]; ok {
		c.Inc()
		return
	}
	m.other.Inc()
}

// NewRouter builds a sharded daemon front end. Nothing starts until
// Serve.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Socket == "" {
		return nil, errors.New("serve: router socket path required")
	}
	if cfg.Shards < 1 {
		return nil, errors.New("serve: router needs at least one shard")
	}
	if cfg.Dir == "" {
		return nil, errors.New("serve: router needs a durable-state dir (shards are journaled)")
	}
	if cfg.Build == nil {
		return nil, errors.New("serve: router needs a shard builder")
	}
	if cfg.SocketFor == nil {
		base := cfg.Socket
		cfg.SocketFor = func(i int) string { return fmt.Sprintf("%s.shard%d", base, i) }
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 200 * time.Millisecond
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 100 * time.Millisecond
	}
	if cfg.MaxRestartBackoff <= 0 {
		cfg.MaxRestartBackoff = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.Default()
	}
	r := &Router{
		cfg:      cfg,
		ring:     newHashRing(cfg.Shards, cfg.Vnodes),
		reg:      reg,
		met:      newRouterMetrics(reg, cfg.Shards),
		location: make(map[string]int),
		conns:    make(map[net.Conn]struct{}),
		ready:    make(chan struct{}),
		supStop:  make(chan struct{}),
		supDone:  make(chan struct{}),
	}
	for i := 0; i < cfg.Shards; i++ {
		r.shards = append(r.shards, &shardHandle{
			index:  i,
			socket: cfg.SocketFor(i),
			dir:    filepath.Join(cfg.Dir, fmt.Sprintf("shard-%d", i)),
		})
	}
	return r, nil
}

// Serve starts every shard, binds the router socket, and blocks serving
// connections until a drain. A shard that fails to start does not abort
// the daemon: it is marked down and the supervisor keeps retrying it
// while the rest of the fleet serves.
func (r *Router) Serve() error {
	for _, h := range r.shards {
		if err := os.MkdirAll(h.dir, 0o755); err != nil {
			return err
		}
		if err := r.startShard(h); err != nil {
			r.markDown(h, err)
		}
	}
	lns, err := bindListeners(r.cfg.Socket, r.cfg.Listeners)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.lns = lns
	r.mu.Unlock()
	go r.supervise()
	close(r.ready)
	var accept sync.WaitGroup
	for _, ln := range lns {
		accept.Add(1)
		go func(ln net.Listener) {
			defer accept.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return // listener closed by drain/close
				}
				r.mu.Lock()
				r.conns[conn] = struct{}{}
				r.mu.Unlock()
				r.wg.Add(1)
				go r.serveConn(conn)
			}
		}(ln)
	}
	accept.Wait()
	r.mu.Lock()
	for c := range r.conns {
		c.SetReadDeadline(time.Now())
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// ListenAddrs reports the bound listener addresses, in bind order (the
// Unix socket first). Useful with "tcp:127.0.0.1:0" specs, where the
// kernel picks the port.
func (r *Router) ListenAddrs() []net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	addrs := make([]net.Addr, 0, len(r.lns))
	for _, ln := range r.lns {
		addrs = append(addrs, ln.Addr())
	}
	return addrs
}

// Ready is closed once every shard has been started (or marked down) and
// the router socket is accepting.
func (r *Router) Ready() <-chan struct{} { return r.ready }

// Final reports the drain response once the router has drained.
func (r *Router) Final() Response {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.final
}

// Drain gracefully shuts the daemon down: stop supervision, drain every
// running shard (fast-forwarding its jobs to terminal statuses), report
// the merged result, and close the router socket. Down shards cannot be
// drained — their journaled jobs recover on the next start — and are
// reported as such.
func (r *Router) Drain() Response {
	r.stopSupervisor()
	jobs, terminal := 0, 0
	maxVN := 0.0
	ok := true
	var notes []string
	for _, h := range r.shards {
		h.mu.Lock()
		state, cl := h.state, h.client
		h.state = ShardRetired // no restarts past this point
		h.mu.Unlock()
		switch state {
		case ShardRunning:
			resp, err := cl.Do(Message{Op: "drain"})
			if err != nil {
				ok = false
				notes = append(notes, fmt.Sprintf("shard %d: drain: %v", h.index, err))
				continue
			}
			jobs += resp.Jobs
			terminal += resp.Terminal
			if resp.VirtualNow > maxVN {
				maxVN = resp.VirtualNow
			}
			if !resp.OK {
				ok = false
				notes = append(notes, fmt.Sprintf("shard %d: %s", h.index, resp.Error))
			}
		case ShardRetired:
			// already drained by retire
		default:
			ok = false
			notes = append(notes, fmt.Sprintf("shard %d: down (journaled jobs recover on next start)", h.index))
		}
	}
	resp := Response{OK: ok, Status: "drained", Jobs: jobs, Terminal: terminal, VirtualNow: maxVN}
	if len(notes) > 0 {
		resp.Error = strings.Join(notes, "; ")
	}
	if !ok {
		resp.Code = CodeShardUnavailable
	}
	r.mu.Lock()
	r.final = resp
	r.mu.Unlock()
	r.shutdown()
	return resp
}

// Close hard-stops the daemon (test teardown): supervision stops, every
// live shard is killed (journals stay durable), the router socket
// closes.
func (r *Router) Close() {
	r.stopSupervisor()
	for _, h := range r.shards {
		h.mu.Lock()
		srv, state := h.srv, h.state
		h.state = ShardRetired
		h.mu.Unlock()
		if srv != nil && state != ShardRetired {
			srv.Kill()
		}
	}
	r.shutdown()
}

func (r *Router) stopSupervisor() {
	r.supStopOnce.Do(func() { close(r.supStop) })
	select {
	case <-r.ready:
		<-r.supDone // supervise was started by Serve
	default:
		// Serve never got far enough to start the supervisor.
	}
}

func (r *Router) shutdown() {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		for _, ln := range r.lns {
			ln.Close()
		}
		r.mu.Unlock()
	})
}

// serveConn mirrors the single server's connection loop: the codec is
// negotiated per connection (JSON lines or the binary framing), replies
// are typed errors for malformed or oversized input.
func (r *Router) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
	}()
	connLoop(conn, r.handleMessage, nil, nil)
}

// handleLine parses and executes one request line. It is the fuzzing
// surface: whatever the bytes, the reply is a typed Response — never a
// panic, never a wedge.
func (r *Router) handleLine(line []byte) Response {
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Response{Error: "serve: bad request: " + err.Error(), Code: CodeBadRequest}
	}
	return r.handleMessage(m)
}

// handleMessage executes one router op.
func (r *Router) handleMessage(m Message) Response {
	r.met.count(m.Op)
	switch m.Op {
	case "submit":
		return r.submit(m)
	case "status":
		return r.status(m)
	case "stats":
		return r.aggregateStats()
	case "advance":
		return r.advance(m)
	case "metrics":
		return r.metricsResponse(m)
	case "trace-tail":
		h, errResp, ok := r.shardArg(m)
		if !ok {
			return errResp
		}
		return r.forward(h, m)
	case "health":
		return r.healthResponse(0)
	case "resume":
		return r.healthResponse(m.ServerEpoch)
	case "shards":
		return r.shardsResponse()
	case "migrate":
		return r.migrate(m)
	case "retire":
		return r.retire(m)
	case "drain":
		return r.Drain()
	default:
		return Response{Error: fmt.Sprintf("serve: unknown op %q", m.Op), Code: CodeUnknownOp}
	}
}

// shardArg resolves an explicitly shard-addressed op's target.
func (r *Router) shardArg(m Message) (*shardHandle, Response, bool) {
	if m.Shard < 0 || m.Shard >= len(r.shards) {
		return nil, Response{Error: fmt.Sprintf("serve: shard %d out of range [0,%d)", m.Shard, len(r.shards)), Code: CodeBadShard}, false
	}
	return r.shards[m.Shard], Response{}, true
}

// forward sends one request to a shard, translating its supervision
// state and any transport failure into typed replies. The shard client's
// deadlines guarantee the call returns; it never hangs.
func (r *Router) forward(h *shardHandle, m Message) Response {
	h.mu.Lock()
	state, cl := h.state, h.client
	h.mu.Unlock()
	switch state {
	case ShardRetired:
		return Response{Error: fmt.Sprintf("serve: shard %d retired", h.index), Code: CodeShardRetired, Shard: h.index}
	case ShardRunning:
	default:
		return r.unavailable(h)
	}
	resp, err := cl.Do(m)
	if err != nil {
		r.met.unavailable[h.index].Inc()
		return Response{
			Error:          fmt.Sprintf("serve: shard %d: %v", h.index, err),
			Code:           CodeShardUnavailable,
			Shard:          h.index,
			RetryAfterSecs: r.cfg.RestartBackoff.Seconds(),
		}
	}
	r.met.forwards[h.index].Inc()
	resp.Shard = h.index
	return resp
}

// unavailable is the typed graceful-degradation reply for a down shard,
// with the supervisor's restart horizon as the retry-after hint.
func (r *Router) unavailable(h *shardHandle) Response {
	h.mu.Lock()
	retry := time.Until(h.retryAt).Seconds()
	h.mu.Unlock()
	if retry < 0.05 {
		retry = 0.05
	}
	r.met.unavailable[h.index].Inc()
	return Response{
		Error:          fmt.Sprintf("serve: shard %d unavailable (supervised restart pending)", h.index),
		Code:           CodeShardUnavailable,
		Shard:          h.index,
		RetryAfterSecs: retry,
	}
}

// ownerOf resolves which shard holds (or should hold) a job: the
// location map's explicit override first — migrations and reroutes beat
// the ring — then the consistent-hash owner, walking past retired shards
// only. A down shard still owns its keys.
func (r *Router) ownerOf(id string) *shardHandle { return r.ownerOfKey(id, id) }

// ownerOfKey is ownerOf with an explicit ring key: submits route by
// tenant (when set) so one tenant's jobs co-locate deterministically on
// one shard — its quota and fair-share state then live under a single
// admission controller — while the location map stays keyed by job id
// (migrations move individual jobs, not tenants).
func (r *Router) ownerOfKey(id, key string) *shardHandle {
	r.locMu.Lock()
	if i, ok := r.location[id]; ok {
		r.locMu.Unlock()
		return r.shards[i]
	}
	r.locMu.Unlock()
	idx := r.ring.Owner(key, func(i int) bool { return r.shards[i].State() != ShardRetired })
	if idx < 0 {
		return nil
	}
	return r.shards[idx]
}

// routingKey is a submission's consistent-hash key: the tenant when one
// is set, else the job id. The "tenant:" prefix keeps a tenant named
// like a job id from colliding with that job's key.
func routingKey(m Message) string {
	if m.Tenant != "" {
		return "tenant:" + m.Tenant
	}
	return m.ID
}

func (r *Router) virtualTargetGet() float64 {
	r.locMu.Lock()
	defer r.locMu.Unlock()
	return r.virtualTarget
}

// submit routes a submission to its hash-owner. An id-less submit gets a
// router-generated id first: routing needs the key before any shard has
// seen the job.
func (r *Router) submit(m Message) Response {
	if err := ValidateTenant(m.Tenant); err != nil {
		return Response{Error: err.Error(), Code: CodeBadRequest}
	}
	if m.ID == "" {
		r.locMu.Lock()
		m.ID = fmt.Sprintf("srv-%05d", r.nextID)
		r.nextID++
		r.locMu.Unlock()
	}
	h := r.ownerOfKey(m.ID, routingKey(m))
	if h == nil {
		return Response{Error: "serve: no live shard to accept the submission", Code: CodeShardUnavailable}
	}
	resp := r.forward(h, m)
	if resp.OK || resp.Code == CodeDuplicateRequest {
		id := resp.ID
		if id == "" {
			id = m.ID
		}
		r.locMu.Lock()
		r.location[id] = h.index
		r.locMu.Unlock()
	}
	return resp
}

// status follows the job wherever it lives. The hash-owner answering
// "migrated" (the source-side tombstone) or unknown-job triggers a sweep
// of the other live shards — the paths a migrated job's status takes
// after the router lost its location map to a restart.
func (r *Router) status(m Message) Response {
	if m.ID == "" {
		return Response{Error: "serve: status requires a job id", Code: CodeBadRequest}
	}
	h := r.ownerOf(m.ID)
	if h == nil {
		return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID), Code: CodeUnknownJob}
	}
	resp := r.forward(h, m)
	if resp.Code == CodeUnknownJob || (resp.OK && resp.Status == "migrated") {
		for _, other := range r.shards {
			if other == h || other.State() != ShardRunning {
				continue
			}
			alt := r.forward(other, m)
			if alt.OK && alt.Status != "migrated" {
				r.locMu.Lock()
				r.location[m.ID] = other.index
				r.locMu.Unlock()
				return alt
			}
		}
	}
	return resp
}

// advance fast-forwards every non-retired shard and raises the advance
// horizon restarted shards catch up to. A down shard does not block the
// fleet: the reply carries a shard-unavailable caveat and the supervisor
// replays the missing time after the restart.
func (r *Router) advance(m Message) Response {
	if m.Seconds < 0 {
		return Response{Error: "serve: advance seconds must be >= 0", Code: CodeBadRequest}
	}
	maxVN := 0.0
	caveat := false
	for _, h := range r.shards {
		if h.State() == ShardRetired {
			continue
		}
		resp := r.forward(h, m)
		if !resp.OK {
			caveat = true
			continue
		}
		if resp.VirtualNow > maxVN {
			maxVN = resp.VirtualNow
		}
	}
	r.locMu.Lock()
	if maxVN > r.virtualTarget {
		r.virtualTarget = maxVN
	}
	target := r.virtualTarget
	r.locMu.Unlock()
	resp := Response{OK: true, VirtualNow: target}
	if caveat {
		resp.Code = CodeShardUnavailable
	}
	return resp
}

// aggregateStats fans the stats op across shards and merges the sums.
func (r *Router) aggregateStats() Response {
	jobs, terminal := 0, 0
	maxVN := 0.0
	ok := true
	var reports []string
	for _, h := range r.shards {
		if h.State() == ShardRetired {
			continue
		}
		resp := r.forward(h, Message{Op: "stats"})
		if !resp.OK {
			ok = false
			reports = append(reports, fmt.Sprintf("=== shard %d ===\nunavailable: %s", h.index, resp.Error))
			continue
		}
		jobs += resp.Jobs
		terminal += resp.Terminal
		if resp.VirtualNow > maxVN {
			maxVN = resp.VirtualNow
		}
		reports = append(reports, fmt.Sprintf("=== shard %d ===\n%s", h.index, resp.Report))
	}
	resp := Response{OK: ok, Jobs: jobs, Terminal: terminal, VirtualNow: maxVN, Report: strings.Join(reports, "\n")}
	if !ok {
		resp.Code = CodeShardUnavailable
	}
	return resp
}

// metricsResponse merges the router's own registry with every running
// shard's rendering, each sample tagged shard="i" so the families never
// collide.
func (r *Router) metricsResponse(m Message) Response {
	var b strings.Builder
	b.WriteString(r.reg.RenderText(m.Wall))
	for _, h := range r.shards {
		if h.State() != ShardRunning {
			continue
		}
		resp := r.forward(h, Message{Op: "metrics", Wall: m.Wall})
		if resp.OK {
			b.WriteString(obs.InjectLabel(resp.Report, "shard", strconv.Itoa(h.index)))
		}
	}
	return Response{OK: true, Report: b.String()}
}

// healthResponse aggregates shard health. The daemon-level server epoch
// is the SUM of shard epochs, so any single shard restart still reads as
// an epoch change in the resume handshake (clientEpoch != 0 compares it).
func (r *Router) healthResponse(clientEpoch int) Response {
	jobs, terminal, epochSum, down := 0, 0, 0, 0
	maxVN := 0.0
	for _, h := range r.shards {
		if h.State() == ShardRunning {
			resp := r.forward(h, Message{Op: "health"})
			if resp.OK || resp.Code == "" {
				jobs += resp.Jobs
				terminal += resp.Terminal
				epochSum += resp.ServerEpoch
				if resp.VirtualNow > maxVN {
					maxVN = resp.VirtualNow
				}
				continue
			}
		}
		h.mu.Lock()
		state, last := h.state, h.lastEpoch
		h.mu.Unlock()
		if state != ShardRetired {
			down++
		}
		epochSum += last
	}
	resp := Response{
		OK:          true,
		Status:      "healthy",
		Jobs:        jobs,
		Terminal:    terminal,
		VirtualNow:  maxVN,
		ServerEpoch: epochSum,
	}
	if down > 0 {
		resp.Status = fmt.Sprintf("degraded (%d shard(s) down)", down)
	}
	if clientEpoch != 0 && clientEpoch != epochSum {
		resp.Code = CodeServerRestarted
	}
	return resp
}

// shardsResponse is the supervision report: one row per shard.
func (r *Router) shardsResponse() Response {
	resp := Response{OK: true}
	for _, h := range r.shards {
		h.mu.Lock()
		info := ShardInfo{Index: h.index, State: h.state.String(), Restarts: h.restarts, ServerEpoch: h.lastEpoch}
		if h.lastErr != nil {
			info.Error = h.lastErr.Error()
		}
		state := h.state
		h.mu.Unlock()
		if state == ShardRunning {
			if hr := r.forward(h, Message{Op: "health"}); hr.OK {
				info.Jobs = hr.Jobs
				info.Terminal = hr.Terminal
				info.VirtualNow = hr.VirtualNow
				info.ServerEpoch = hr.ServerEpoch
			}
		}
		resp.Shards = append(resp.Shards, info)
	}
	return resp
}

// migrate moves one job to the target shard by checkpoint-carried
// handoff: migrate-out (drain + detach on the source), export/import the
// checkpoint frame between the shards' durable namespaces, migrate-in
// (journal + re-register on the target), migrate-commit (source-side
// tombstone). A failure after the detach re-registers the job on its
// source — and even if that fails, the source journal still lists the
// job live, so the next shard restart recovers it: no admitted job is
// ever lost to a half-finished migration.
func (r *Router) migrate(m Message) Response {
	if m.ID == "" {
		return Response{Error: "serve: migrate requires a job id", Code: CodeBadRequest}
	}
	dst, errResp, ok := r.shardArg(m)
	if !ok {
		return errResp
	}
	r.migMu.Lock()
	defer r.migMu.Unlock()
	src := r.ownerOf(m.ID)
	if src == nil {
		return Response{Error: fmt.Sprintf("serve: unknown job %q", m.ID), Code: CodeUnknownJob}
	}
	if src == dst {
		return Response{OK: true, ID: m.ID, Shard: src.index, Code: CodeMigrateNoop}
	}
	if dst.State() != ShardRunning {
		if dst.State() == ShardRetired {
			return Response{Error: fmt.Sprintf("serve: shard %d retired", dst.index), Code: CodeShardRetired, Shard: dst.index}
		}
		return r.unavailable(dst)
	}
	out := r.forward(src, Message{Op: "migrate-out", ID: m.ID})
	if !out.OK || out.Code == CodeMigrateNoop {
		return out
	}
	if out.Job == nil {
		return Response{Error: fmt.Sprintf("serve: shard %d returned no job record for %q", src.index, m.ID), Code: CodeBadRequest}
	}
	// Checkpoint transfer, out of band: the frame moves between the two
	// shards' durable namespaces before the target registers the job, so
	// the target's first grant can reattach. A job that never ran has no
	// frame — the target then restarts it from pristine scratch, exactly
	// like crash-restart recovery.
	if err := r.transferCheckpoint(src, dst, m.ID); err != nil {
		back := r.forward(src, Message{Op: "migrate-in", Job: out.Job})
		if !back.OK {
			// The source journal still lists the job live; its next restart
			// re-registers it. Nothing is lost, but report the degraded path.
			return Response{Error: fmt.Sprintf("serve: migrate %s: %v (job recovers on shard %d's next restart)", m.ID, err, src.index), Code: CodeShardUnavailable, Shard: src.index}
		}
		return Response{Error: fmt.Sprintf("serve: migrate %s: %v (job re-registered on shard %d)", m.ID, err, src.index), Code: CodeShardUnavailable, Shard: src.index}
	}
	in := r.forward(dst, Message{Op: "migrate-in", Job: out.Job})
	if !in.OK {
		back := r.forward(src, Message{Op: "migrate-in", Job: out.Job})
		if !back.OK {
			return Response{Error: fmt.Sprintf("serve: migrate %s: target refused (%s) and source re-register failed (%s); job recovers on shard %d's next restart", m.ID, in.Error, back.Error, src.index), Code: CodeShardUnavailable, Shard: src.index}
		}
		return in
	}
	// Commit point passed: the job is durable on the target. A commit or
	// cleanup failure past here degrades to bounded duplicate work on the
	// source after ITS next restart — never loss — so errors are not
	// propagated to the caller.
	r.forward(src, Message{Op: "migrate-commit", ID: m.ID})
	if st := src.Store(); st != nil {
		st.Remove(m.ID)
	}
	r.locMu.Lock()
	r.location[m.ID] = dst.index
	r.locMu.Unlock()
	r.met.migrations.Inc()
	return Response{
		OK:         true,
		ID:         m.ID,
		Status:     in.Status,
		BestEffort: in.BestEffort,
		VirtualNow: in.VirtualNow,
		Shard:      dst.index,
	}
}

// transferCheckpoint copies a job's durable checkpoint frame from the
// source shard's namespace into the target's. No frame is not an error.
func (r *Router) transferCheckpoint(src, dst *shardHandle, id string) error {
	srcStore, dstStore := src.Store(), dst.Store()
	if srcStore == nil || dstStore == nil {
		return errors.New("serve: shard checkpoint store unavailable")
	}
	frame, err := srcStore.Export(id)
	if errors.Is(err, core.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	return dstStore.Import(id, frame)
}

// retire migrates every job the router has located on the shard to its
// ring successor, drains the emptied shard, and reroutes around it
// permanently. Retire is an online operation driven by the router's
// location map; jobs submitted directly to the shard's private socket
// are not tracked and drain with the shard.
func (r *Router) retire(m Message) Response {
	h, errResp, ok := r.shardArg(m)
	if !ok {
		return errResp
	}
	if h.State() == ShardRetired {
		return Response{OK: true, Shard: h.index, Status: "retired", Code: CodeShardRetired}
	}
	if h.State() != ShardRunning {
		return r.unavailable(h)
	}
	r.locMu.Lock()
	var ids []string
	for id, i := range r.location {
		if i == h.index {
			ids = append(ids, id)
		}
	}
	r.locMu.Unlock()
	sort.Strings(ids)
	moved := 0
	for _, id := range ids {
		tgt := r.ring.Owner(id, func(i int) bool {
			return i != h.index && r.shards[i].State() == ShardRunning
		})
		if tgt < 0 {
			return Response{Error: "serve: no live shard to absorb the retiring shard's jobs", Code: CodeShardUnavailable, Shard: h.index}
		}
		mr := r.migrate(Message{Op: "migrate", ID: id, Shard: tgt})
		if !mr.OK {
			return mr
		}
		if mr.Code != CodeMigrateNoop {
			moved++
		}
	}
	// Flip the state before draining so the supervisor does not mistake
	// the drain-induced serve exit for a crash and restart the shard.
	h.mu.Lock()
	cl := h.client
	h.state = ShardRetired
	h.mu.Unlock()
	r.met.shardUp[h.index].Set(0)
	final, err := cl.Do(Message{Op: "drain"})
	resp := Response{OK: true, Shard: h.index, Status: "retired", Jobs: moved, VirtualNow: final.VirtualNow}
	if err != nil {
		resp.Error = fmt.Sprintf("serve: retire shard %d: drain: %v", h.index, err)
	}
	return resp
}
