package serve

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay: whatever bytes follow a valid journal prefix —
// torn appends, bit flips, hostile garbage, even well-formed extra
// lines — recovery must (1) never panic or error, (2) replay exactly
// the longest valid prefix and report everything after it as dropped,
// (3) truncate the file so that recovery is idempotent: a second open
// finds a clean journal and drops zero bytes, and (4) agree with a
// fresh open about the recovered job registry.
func FuzzJournalReplay(f *testing.F) {
	// A realistic valid prefix: one prior incarnation's lifecycle.
	base := validJournalBytes(f)

	frame := func(rec Record) []byte {
		line, err := frameJournalLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		return line
	}
	f.Add([]byte{})                                                        // clean journal
	f.Add([]byte("RJNL1 12345678 {"))                                      // torn append, no newline
	f.Add([]byte("RJNL1 zzzzzzzz {}\n"))                                   // malformed checksum field
	f.Add([]byte("\n\n\n"))                                                // empty lines
	f.Add([]byte("garbage tail\n"))                                        // no magic
	f.Add(frame(Record{Kind: recEpoch, ID: "q-1", Epochs: 3, At: 42}))     // valid extra line
	f.Add(frame(Record{Kind: recTerminal, ID: "q-1", Status: "attained"})) // valid terminal
	half := frame(Record{Kind: recGrant, ID: "q-1", At: 50})
	f.Add(half[:len(half)/2]) // torn mid-line
	flip := frame(Record{Kind: recClock, At: 60})
	flip[len(flip)/2] ^= 0x40
	f.Add(flip) // bit flip inside a framed line

	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalFile)
		data := append(append([]byte{}, base...), tail...)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Reference model: scan the raw bytes exactly as recovery defines
		// the valid prefix — whole newline-terminated lines that frame and
		// parse, up to the first deviation.
		wantValid := int64(0)
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			line, rerr := r.ReadBytes('\n')
			if rerr == io.EOF && len(line) == 0 {
				break
			}
			if rerr != nil {
				break
			}
			if _, perr := parseJournalLine(line[:len(line)-1]); perr != nil {
				break
			}
			wantValid += int64(len(line))
		}

		jl, err := OpenJournal(dir)
		if err != nil {
			t.Fatalf("recovery must tolerate any tail, got error: %v", err)
		}
		rec := jl.Recovered()
		if got, want := rec.DroppedBytes, int64(len(data))-wantValid; got != want {
			t.Fatalf("dropped %d bytes, want %d (file %d, valid prefix %d)", got, want, len(data), wantValid)
		}
		if wantValid < int64(len(base)) {
			t.Fatalf("valid prefix %d shrank below the untouched base journal (%d bytes)", wantValid, len(base))
		}
		firstJobs := rec.Jobs
		firstEpoch := rec.ServerEpoch
		if err := jl.Close(); err != nil {
			t.Fatal(err)
		}

		// The surviving file must start with exactly the valid prefix
		// (recovery appends only its own server-epoch record after it).
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(after)) < wantValid || !bytes.Equal(after[:wantValid], data[:wantValid]) {
			t.Fatal("truncated journal no longer starts with the valid prefix")
		}

		// Idempotence: the recovered journal is clean.
		jl2, err := OpenJournal(dir)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer jl2.Close()
		rec2 := jl2.Recovered()
		if rec2.DroppedBytes != 0 {
			t.Fatalf("second open dropped %d bytes from an already-recovered journal", rec2.DroppedBytes)
		}
		if rec2.ServerEpoch != firstEpoch+1 {
			t.Fatalf("server epoch %d after restart, want %d", rec2.ServerEpoch, firstEpoch+1)
		}
		if len(rec2.Jobs) != len(firstJobs) {
			t.Fatalf("job registry diverged across recoveries: %d vs %d jobs", len(rec2.Jobs), len(firstJobs))
		}
		for i := range firstJobs {
			if rec2.Jobs[i] != firstJobs[i] {
				t.Fatalf("job %d diverged across recoveries: %+v vs %+v", i, rec2.Jobs[i], firstJobs[i])
			}
		}
	})
}

// validJournalBytes builds a well-formed journal: an incarnation stamp,
// two submitted jobs, one admitted/granted/finished, one still pending.
func validJournalBytes(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	for _, rec := range []Record{
		{Kind: recServerEpoch, ServerEpoch: 1, At: 0},
		{Kind: recSubmit, ID: "q-1", ReqID: "r1", Statement: "select avg(x)", BatchRows: 500, At: 1},
		{Kind: recVerdict, ID: "q-1", Status: "admitted", At: 1},
		{Kind: recSubmit, ID: "q-2", ReqID: "r2", Statement: "select sum(y)", BatchRows: 200, At: 2},
		{Kind: recVerdict, ID: "q-2", Status: "degraded", At: 2},
		{Kind: recGrant, ID: "q-1", At: 3},
		{Kind: recEpoch, ID: "q-1", Epochs: 1, At: 9},
		{Kind: recClock, At: 15},
	} {
		line, err := frameJournalLine(rec)
		if err != nil {
			f.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}
