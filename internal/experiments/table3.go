package experiments

import (
	"fmt"
	"strings"
	"time"

	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/workload"
)

// Table3Row is one workload size's overhead measurement: the virtual
// makespan of the workload against the real wall-clock time spent inside
// TTR, TEE and TME — the paper's point being that the recorders and
// estimators cost an imperceptible fraction of the processing time.
type Table3Row struct {
	WorkloadSize    int
	OverallRunSecs  float64 // virtual seconds of workload processing
	TTROverhead     time.Duration
	TEEOverhead     time.Duration
	TMEOverhead     time.Duration
	TTRCallsPerHour float64
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows []Table3Row
	Text string
}

// Table3 regenerates Table III over workload sizes 10, 20, 30 and 40
// under adaptive Rotary-DLT.
func Table3(cfg Config) (*Table3Result, error) {
	res := &Table3Result{}
	for _, size := range []int{10, 20, 30, 40} {
		specs, err := workload.GenerateDLT(workload.DefaultDLTWorkload(size, cfg.Seed))
		if err != nil {
			return nil, err
		}
		repo := estimate.NewRepository()
		if err := workload.SeedDLTHistory(repo, 40, 30, cfg.Seed); err != nil {
			return nil, err
		}
		tee := estimate.NewTEE(repo, 3)
		tme := estimate.NewTME(repo, 3)
		sched := core.NewRotaryDLT(0.5, tee, tme)
		exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				return nil, err
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			return nil, err
		}
		row := Table3Row{
			WorkloadSize:   size,
			OverallRunSecs: exec.Engine().Now().Seconds(),
			TTROverhead:    exec.TTR().Overhead(),
			TEEOverhead:    tee.Overhead(),
			TMEOverhead:    tme.Overhead(),
		}
		res.Rows = append(res.Rows, row)
	}
	var b strings.Builder
	b.WriteString("Table III: overall processing time and TTR/TEE/TME overhead\n")
	fmt.Fprintf(&b, "%9s %16s %14s %14s %14s\n", "workload", "overall-run(s)", "TTR", "TEE", "TME")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%9d %16.0f %14s %14s %14s\n",
			r.WorkloadSize, r.OverallRunSecs, r.TTROverhead, r.TEEOverhead, r.TMEOverhead)
	}
	res.Text = b.String()
	return res, nil
}
