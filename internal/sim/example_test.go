package sim_test

import (
	"fmt"

	"rotary/internal/sim"
)

// The engine fires scheduled events in virtual-time order; same-instant
// events fire in scheduling order, making runs fully deterministic.
func ExampleEngine() {
	eng := sim.New()
	eng.Schedule(10, func() { fmt.Println("epoch done at", eng.Now()) })
	eng.Schedule(5, func() {
		fmt.Println("arrival at", eng.Now())
		eng.Schedule(2, func() { fmt.Println("follow-up at", eng.Now()) })
	})
	eng.Run()
	// Output:
	// arrival at 5.000s
	// follow-up at 7.000s
	// epoch done at 10.000s
}
