package core_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"rotary/internal/core"
	"rotary/internal/diskio"
	"rotary/internal/tpch"
)

func TestCheckpointStoreTiers(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} { // "a" spills to disk
		if err := store.Save(id, []byte("state-"+id)); err != nil {
			t.Fatal(err)
		}
	}
	if data, fromMem, err := store.Load("c"); err != nil || !fromMem || string(data) != "state-c" {
		t.Fatalf("load c: %q mem=%v err=%v", data, fromMem, err)
	}
	if data, fromMem, err := store.Load("a"); err != nil || fromMem || string(data) != "state-a" {
		t.Fatalf("load a: %q mem=%v err=%v (want disk tier)", data, fromMem, err)
	}
	writes, memHits, diskHits, diskBytes := store.Stats()
	if writes != 3 || memHits != 1 || diskHits != 1 || diskBytes == 0 {
		t.Fatalf("stats = %d %d %d %d", writes, memHits, diskHits, diskBytes)
	}
	store.Remove("a")
	if _, _, err := store.Load("a"); err == nil {
		t.Error("loaded a removed checkpoint")
	}
}

func TestCheckpointStoreDiskOnly(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if _, fromMem, err := store.Load("x"); err != nil || fromMem {
		t.Fatalf("disk-only store served from memory (err=%v)", err)
	}
}

func TestCheckpointStoreUpdateSameID(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("j", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("j", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	data, _, err := store.Load("j")
	if err != nil || string(data) != "v2" {
		t.Fatalf("load = %q, %v", data, err)
	}
}

// A contended workload with real persistence: deferred jobs' states are
// actually serialized, dropped, and restored, and the run must produce
// the same outcomes as an identical run without persistence — proving the
// checkpoint round trip is lossless under arbitration.
func TestExecutorWithRealCheckpointsMatchesInMemory(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := func(store *core.CheckpointStore) []*core.AQPJob {
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 1 // force constant deferral between two jobs
		cfg.Store = store
		// Zero the virtual resume cost so both runs share identical
		// timing and differ only in whether state is really persisted.
		cfg.CheckpointBaseSecs = 0
		cfg.CheckpointSecsPerMB = 0
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		a := buildJob(t, cat, "a", "q1", 0.9, 1e6)
		b := buildJob(t, cat, "b", "q12", 0.9, 1e6)
		exec.Submit(a, 0)
		exec.Submit(b, 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Jobs()
	}
	store, err := core.NewCheckpointStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	withStore := run(store)
	inMemory := run(nil)
	writes, memHits, diskHits, _ := store.Stats()
	if writes == 0 || memHits+diskHits == 0 {
		t.Fatalf("store unused: writes=%d resumes=%d", writes, memHits+diskHits)
	}
	for i := range withStore {
		a, b := withStore[i], inMemory[i]
		if a.Status() != b.Status() || a.Epochs() != b.Epochs() ||
			a.StopAccuracy() != b.StopAccuracy() || a.EndTime() != b.EndTime() {
			t.Errorf("job %s diverged with persistence: %v/%d/%v/%v vs %v/%d/%v/%v",
				a.ID(), a.Status(), a.Epochs(), a.StopAccuracy(), a.EndTime(),
				b.Status(), b.Epochs(), b.StopAccuracy(), b.EndTime())
		}
	}
}

// Memory-tier resumes must be cheaper in virtual time than disk replays.
func TestMemoryTierResumesAreCheaper(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := func(slots int) float64 {
		store, err := core.NewCheckpointStore(t.TempDir(), slots)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 1
		cfg.Store = store
		cfg.CheckpointBaseSecs = 10 // make replay cost visible
		exec := core.NewAQPExecutor(cfg, fifoAQP{reserve: true}, nil)
		exec.Submit(buildJob(t, cat, "a", "q1", 0.9, 1e6), 0)
		exec.Submit(buildJob(t, cat, "b", "q12", 0.9, 1e6), 0)
		if err := exec.Run(); err != nil {
			t.Fatal(err)
		}
		return exec.Engine().Now().Seconds()
	}
	memTier := run(4) // both jobs stay resident
	diskOnly := run(0)
	if memTier >= diskOnly {
		t.Errorf("memory-tier makespan %.0fs not below disk-only %.0fs", memTier, diskOnly)
	}
}

// A corrupted persisted checkpoint must be caught by the frame checksum
// (never deserialized) and recovered by a clean from-scratch restart, with
// the run finishing on the same results as an uncorrupted one.
func TestCorruptCheckpointDetectedAndRestartedCleanly(t *testing.T) {
	cat := tpch.NewCatalog(tpch.Generate(0.005, 1), 1)
	run := func(corrupt bool) ([]*core.AQPJob, core.StoreHealth, core.RecoveryStats) {
		dir := t.TempDir()
		store, err := core.NewCheckpointStore(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultAQPExecConfig(1e6)
		cfg.Threads = 1 // force constant deferral between two jobs
		cfg.Store = store
		var sched core.AQPScheduler = fifoAQP{reserve: true}
		if corrupt {
			sched = &corruptingFifo{dir: dir}
		}
		exec := core.NewAQPExecutor(cfg, sched, nil)
		exec.Submit(buildJob(t, cat, "a", "q1", 0.9, 1e6), 0)
		exec.Submit(buildJob(t, cat, "b", "q12", 0.9, 1e6), 0)
		if err := exec.Run(); err != nil {
			t.Fatalf("run (corrupt=%v): %v", corrupt, err)
		}
		return exec.Jobs(), store.Health(), exec.Recovery()
	}
	faulty, health, rec := run(true)
	clean, _, _ := run(false)
	if health.CorruptDetected == 0 {
		t.Fatal("corrupted checkpoint was never detected by the checksum")
	}
	if rec.ScratchRestarts == 0 {
		t.Fatal("no from-scratch restart after corruption")
	}
	for i := range faulty {
		a, b := faulty[i], clean[i]
		if a.Status() != b.Status() || a.StopAccuracy() != b.StopAccuracy() {
			t.Errorf("job %s diverged after corruption recovery: %v/%v vs %v/%v",
				a.ID(), a.Status(), a.StopAccuracy(), b.Status(), b.StopAccuracy())
		}
		if got, want := a.Query().Snapshot(), b.Query().Snapshot(); !snapshotsEqual(got.Groups, want.Groups) {
			t.Errorf("job %s final aggregates diverged after corruption recovery", a.ID())
		}
	}
}

// corruptingFifo behaves like fifoAQP but trashes every persisted
// checkpoint it sees — once. The first resume after that must detect the
// damage via the checksum and restart the job from scratch.
type corruptingFifo struct {
	dir  string
	done bool
}

func (c *corruptingFifo) Name() string { return "corruptor" }

func (c *corruptingFifo) Assign(ctx *core.AQPContext) []core.AQPGrant {
	if !c.done {
		entries, _ := os.ReadDir(c.dir)
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".ckpt" {
				_ = os.WriteFile(filepath.Join(c.dir, e.Name()), []byte("{broken"), 0o644)
				c.done = true
			}
		}
	}
	return fifoAQP{reserve: true}.Assign(ctx)
}

func snapshotsEqual(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for g, va := range a {
		vb, ok := b[g]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// Load of an id that was never saved reports ErrNotFound.
func TestCheckpointStoreLoadMissingIsErrNotFound(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("load of missing id = %v, want ErrNotFound", err)
	}
}

// A truncated or bit-flipped frame must decode as ErrCorrupt and count in
// the health stats, without the payload ever reaching a caller.
func TestCheckpointStoreDetectsTamperedFrames(t *testing.T) {
	dir := t.TempDir()
	store, err := core.NewCheckpointStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("j", []byte(`{"offset":42}`)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "j.ckpt")
	tamper := map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)/2] },
		"bad-magic":  func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bit-flip":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"bad-length": func(b []byte) []byte { b[8] ^= 0xFF; return b },
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	detected := 0
	for name, fn := range tamper {
		if err := os.WriteFile(path, fn(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if data, _, err := store.Load("j"); !errors.Is(err, core.ErrCorrupt) {
			t.Errorf("%s frame: load = (%q, %v), want ErrCorrupt", name, data, err)
		} else {
			detected++
		}
	}
	if h := store.Health(); h.CorruptDetected != detected {
		t.Errorf("health counted %d corruptions, want %d", h.CorruptDetected, detected)
	}
}

// The LRU memory tier must evict (and spill) the least recently used
// checkpoint: touching an old entry via Load keeps it resident.
func TestCheckpointStoreLRUEvictionOrder(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		if err := store.Save(id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, fromMem, _ := store.Load("a"); !fromMem { // refresh "a": now b is LRU
		t.Fatal("a not resident before eviction")
	}
	if err := store.Save("c", []byte("c")); err != nil { // evicts b, not a
		t.Fatal(err)
	}
	if _, fromMem, err := store.Load("a"); err != nil || !fromMem {
		t.Errorf("recently used a was evicted (mem=%v err=%v)", fromMem, err)
	}
	if _, fromMem, err := store.Load("b"); err != nil || fromMem {
		t.Errorf("LRU entry b not spilled to disk (mem=%v err=%v)", fromMem, err)
	}
}

// Stale checkpoint files from a previous (crashed) run are swept away
// when a store opens over the directory.
func TestCheckpointStoreSweepsStaleFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"old1.ckpt", "old2.ckpt", "torn.ckpt.tmp", "keep.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	store, err := core.NewCheckpointStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h := store.Health(); h.Swept != 3 {
		t.Errorf("swept %d stale files, want 3", h.Swept)
	}
	if _, _, err := store.Load("old1"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("stale checkpoint survived the sweep: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "keep.txt")); err != nil {
		t.Errorf("sweep removed a non-checkpoint file: %v", err)
	}
}

// A rename that fails mid-write (ENOSPC on the directory) orphans the
// temp file: the atomic-write protocol never moves a partial file into
// place, and with Remove also failing the cleanup path can't reclaim
// it either. The next store opened over the directory must sweep the
// orphan so torn writes never accumulate across restarts.
func TestCheckpointSweepReclaimsOrphanedTemp(t *testing.T) {
	dir := t.TempDir()
	faulty := diskio.NewFaulty(nil, diskio.FaultConfig{
		Seed:           5,
		RenameFailRate: 1, // atomic-write publish step always fails...
		RemoveFailRate: 1, // ...and so does the tmp-file cleanup
	})
	store, err := core.NewCheckpointStoreIO(dir, 0, nil, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("torn", []byte("half-written")); !errors.Is(err, core.ErrTransient) {
		t.Fatalf("save with failing rename: got %v, want ErrTransient", err)
	}
	store.Close()

	orphans := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatalf("failed rename left no orphaned .tmp file; entries: %v", entries)
	}

	// A fresh store over the same directory (clean I/O) sweeps the orphan.
	clean, err := core.NewCheckpointStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	if h := clean.Health(); h.Swept < 1 {
		t.Fatalf("sweep reclaimed %d files, want >= %d orphaned temps", h.Swept, orphans)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("orphaned temp %s survived the sweep", e.Name())
		}
	}
}

// Delete removes both tiers; Close drops everything and fails later ops.
func TestCheckpointStoreDeleteAndClose(t *testing.T) {
	dir := t.TempDir()
	store, err := core.NewCheckpointStore(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"mem", "disk"} { // "mem" resident, "disk" spilled
		if err := store.Save(id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Delete("disk"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Load("disk"); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("deleted checkpoint still loads: %v", err)
	}
	if err := store.Delete("never-existed"); err != nil {
		t.Errorf("deleting a missing id: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			t.Errorf("close leaked checkpoint file %s", e.Name())
		}
	}
	if err := store.Save("late", []byte("x")); err == nil {
		t.Error("save succeeded on a closed store")
	}
	if _, _, err := store.Load("late"); err == nil {
		t.Error("load succeeded on a closed store")
	}
}

// Concurrent Save/Load/Delete across goroutines must be race-clean (run
// under -race) and every readback must be either the saved bytes or a
// clean ErrNotFound after deletion.
func TestCheckpointStoreConcurrentUse(t *testing.T) {
	store, err := core.NewCheckpointStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("job-%d", w)
			payload := []byte(fmt.Sprintf(`{"worker":%d}`, w))
			for i := 0; i < 50; i++ {
				if err := store.Save(id, payload); err != nil {
					t.Errorf("save %s: %v", id, err)
					return
				}
				data, _, err := store.Load(id)
				if err != nil {
					t.Errorf("load %s: %v", id, err)
					return
				}
				if string(data) != string(payload) {
					t.Errorf("load %s = %q, want %q", id, data, payload)
					return
				}
			}
			if err := store.Delete(id); err != nil {
				t.Errorf("delete %s: %v", id, err)
			}
		}(w)
	}
	wg.Wait()
	writes, memHits, diskHits, _ := store.Stats()
	if writes != 8*50 || memHits+diskHits != 8*50 {
		t.Errorf("stats lost operations: writes=%d resumes=%d", writes, memHits+diskHits)
	}
}
