// Package hpo implements a successive-halving hyperparameter-optimization
// controller on top of the Rotary framework — the application the paper's
// introduction motivates: "a set of hyperparameter configurations are
// sampled from a hyperparameter space and formed a number of training
// trials that run iteratively … resource arbitration could stop the
// trials that contain unpromising hyperparameter configurations
// prematurely and allocate more resources to the promising ones so that
// the best-performing hyperparameters can be discovered sooner." The
// rung structure follows Hyperband's successive halving (the paper's
// [23]).
//
// Each rung submits the surviving trials with runtime-oriented completion
// criteria ("FOR r EPOCHS") to a DLT executor under efficiency
// Rotary-DLT; after the rung completes, the top 1/eta fraction by
// evaluation accuracy advances with an eta-times larger epoch budget.
// Trials keep their trained state across rungs (they are resumed, not
// restarted).
package hpo

import (
	"fmt"
	"sort"

	"rotary/internal/core"
	"rotary/internal/criteria"
	"rotary/internal/dlt"
	"rotary/internal/estimate"
)

// Trial is one hyperparameter configuration under evaluation.
type Trial struct {
	ID     string
	Config dlt.Config

	job      *dlt.Job
	accuracy float64
	epochs   int
	// rungDropped records the rung at which the trial was eliminated
	// (-1 = survived to the end).
	rungDropped int
}

// Accuracy reports the trial's latest evaluation accuracy.
func (t *Trial) Accuracy() float64 { return t.accuracy }

// Epochs reports the total epochs the trial trained across all rungs.
func (t *Trial) Epochs() int { return t.epochs }

// RungDropped reports the rung index at which the trial was eliminated,
// or -1 if it survived every rung.
func (t *Trial) RungDropped() int { return t.rungDropped }

// Config parameterizes a search.
type Config struct {
	// InitialEpochs is the epoch budget of the first rung (r in
	// successive halving).
	InitialEpochs int
	// Eta is the elimination factor: each rung keeps ⌈n/Eta⌉ trials and
	// multiplies the epoch budget by Eta.
	Eta int
	// MaxEpochs caps any single trial's cumulative training.
	MaxEpochs int
	// Cluster sizes the simulated GPU substrate.
	Cluster core.DLTExecConfig
	// Repo supplies the estimators' history; nil uses an empty repository.
	Repo *estimate.Repository
}

// DefaultConfig returns a 1-epoch-rung, eta-3 search on the paper's
// 4-GPU cluster.
func DefaultConfig() Config {
	return Config{
		InitialEpochs: 1,
		Eta:           3,
		MaxEpochs:     30,
		Cluster:       core.DefaultDLTExecConfig(),
	}
}

// Result summarizes a finished search.
type Result struct {
	// Best is the winning trial.
	Best *Trial
	// Trials holds every trial with its final state, best first.
	Trials []*Trial
	// Rungs records the per-rung survivor counts and epoch budgets.
	Rungs []RungSummary
	// TotalEpochs is the GPU work spent across all trials.
	TotalEpochs int
	// VirtualSecs is the search's virtual wall time.
	VirtualSecs float64
}

// RungSummary describes one elimination round.
type RungSummary struct {
	Rung      int
	Trials    int
	EpochsPer int
	BestAcc   float64
}

// Search runs successive halving over the given configurations.
func Search(cfg Config, configs []dlt.Config) (*Result, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("hpo: no trial configurations")
	}
	if cfg.Eta < 2 {
		cfg.Eta = 3
	}
	if cfg.InitialEpochs < 1 {
		cfg.InitialEpochs = 1
	}
	if cfg.MaxEpochs < cfg.InitialEpochs {
		cfg.MaxEpochs = cfg.InitialEpochs
	}
	repo := cfg.Repo
	if repo == nil {
		repo = estimate.NewRepository()
	}

	trials := make([]*Trial, len(configs))
	for i, c := range configs {
		job, err := dlt.NewJob(c)
		if err != nil {
			return nil, fmt.Errorf("hpo: trial %d: %w", i, err)
		}
		trials[i] = &Trial{
			ID:          fmt.Sprintf("trial-%02d-%s-%s-lr%g", i, c.Model, c.Optimizer, c.LR),
			Config:      c,
			job:         job,
			rungDropped: -1,
		}
	}

	res := &Result{}
	survivors := trials
	budget := cfg.InitialEpochs
	var elapsed float64
	for rung := 0; len(survivors) > 0; rung++ {
		if err := runRung(cfg, repo, survivors, budget, &elapsed); err != nil {
			return nil, err
		}
		best := 0.0
		for _, t := range survivors {
			if t.accuracy > best {
				best = t.accuracy
			}
		}
		res.Rungs = append(res.Rungs, RungSummary{
			Rung: rung, Trials: len(survivors), EpochsPer: budget, BestAcc: best,
		})
		if len(survivors) == 1 || survivors[0].epochs >= cfg.MaxEpochs {
			break
		}
		// Keep the top ⌈n/Eta⌉ by accuracy.
		sort.SliceStable(survivors, func(a, b int) bool {
			return survivors[a].accuracy > survivors[b].accuracy
		})
		keep := (len(survivors) + cfg.Eta - 1) / cfg.Eta
		if keep < 1 {
			keep = 1
		}
		for _, t := range survivors[keep:] {
			t.rungDropped = rung
		}
		survivors = survivors[:keep]
		budget *= cfg.Eta
		if remaining := cfg.MaxEpochs - survivors[0].epochs; budget > remaining {
			budget = remaining
		}
		if budget <= 0 {
			break
		}
	}

	sort.SliceStable(trials, func(a, b int) bool { return trials[a].accuracy > trials[b].accuracy })
	res.Trials = trials
	res.Best = trials[0]
	for _, t := range trials {
		res.TotalEpochs += t.epochs
	}
	res.VirtualSecs = elapsed
	return res, nil
}

// runRung trains every surviving trial for budget more epochs on a fresh
// executor under efficiency Rotary-DLT, carrying the trials' trained
// state (via checkpoints) across rungs.
func runRung(cfg Config, repo *estimate.Repository, survivors []*Trial, budget int, elapsed *float64) error {
	sched := core.NewRotaryDLT(0, estimate.NewTEE(repo, 3), estimate.NewTME(repo, 3))
	exec := core.NewDLTExecutor(cfg.Cluster, sched, repo)
	pairs := make([]pair, 0, len(survivors))
	for _, t := range survivors {
		// Resume the trial's trained state in a fresh trainer.
		state, err := t.job.Checkpoint()
		if err != nil {
			return fmt.Errorf("hpo: checkpoint %s: %w", t.ID, err)
		}
		trainer, err := dlt.NewJob(t.Config)
		if err != nil {
			return err
		}
		if err := trainer.Restore(state); err != nil {
			return fmt.Errorf("hpo: restore %s: %w", t.ID, err)
		}
		crit, err := criteria.NewRuntime(criteria.Deadline{Value: float64(budget), Unit: criteria.Epochs})
		if err != nil {
			return err
		}
		j, err := core.NewDLTJob(t.ID, trainer, crit)
		if err != nil {
			return err
		}
		pairs = append(pairs, pair{t, j})
		exec.Submit(j, 0)
	}
	if err := exec.Run(); err != nil {
		return err
	}
	for _, p := range pairs {
		p.trial.job = p.job.Trainer()
		p.trial.accuracy = p.job.Accuracy()
		p.trial.epochs = p.job.Trainer().EpochsTrained()
	}
	*elapsed += exec.Engine().Now().Seconds()
	return nil
}

// pair binds a trial to its per-rung arbitrated job.
type pair struct {
	trial *Trial
	job   *core.DLTJob
}
