package dlt_test

import (
	"fmt"

	"rotary/internal/dlt"
)

// A simulated training job exposes exactly what Rotary-DLT observes: the
// per-epoch accuracy series, epoch wall time, and peak GPU memory.
func ExampleJob() {
	job, err := dlt.NewJob(dlt.Config{
		Model: "resnet-18", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for e := 0; e < 3; e++ {
		acc, secs := job.TrainEpoch()
		fmt.Printf("epoch %d: accuracy %.2f (%.0fs)\n", e+1, acc, secs)
	}
	fmt.Printf("peak memory: %.0f MB\n", job.PeakMemoryMB())
	// Output:
	// epoch 1: accuracy 0.29 (86s)
	// epoch 2: accuracy 0.44 (84s)
	// epoch 3: accuracy 0.56 (84s)
	// peak memory: 2953 MB
}

// EpochsToAccuracy reports the oracle epochs-to-target TEE approximates.
func ExampleCurve_EpochsToAccuracy() {
	curve, _ := dlt.NewCurve(dlt.Config{
		Model: "mobilenet", Dataset: "cifar10", BatchSize: 32,
		Optimizer: "sgd", LR: 0.01, Seed: 0,
	})
	e, ok := curve.EpochsToAccuracy(0.85)
	fmt.Println(e, ok)
	_, reachable := curve.EpochsToAccuracy(0.999)
	fmt.Println(reachable)
	// Output:
	// 9 true
	// false
}
