package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rotary/internal/admission"
)

// TestStaleSocketStartup: a SIGKILLed daemon never unlinks its socket;
// the next start must detect the dead socket (nothing answers a dial),
// remove it, and bind — instead of failing with "address already in
// use".
func TestStaleSocketStartup(t *testing.T) {
	dir := t.TempDir()
	socket := filepath.Join(dir, "rotary.sock")
	// Leave a dead socket file behind, exactly as kill -9 would.
	ln, err := net.Listen("unix", socket)
	if err != nil {
		t.Fatalf("plant socket: %v", err)
	}
	ln.(*net.UnixListener).SetUnlinkOnClose(false)
	ln.Close()
	if _, err := os.Stat(socket); err != nil {
		t.Fatalf("stale socket not on disk: %v", err)
	}

	srv, _ := newTestServer(t, nil)
	srv.cfg.Socket = socket
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()
	c := dial(t, socket)
	if r := c.call(t, Message{Op: "health"}); !r.OK {
		t.Fatalf("health on reclaimed socket: %+v", r)
	}
}

// TestLiveSocketNotStolen: the stale-socket probe must leave a living
// server's socket alone — the second daemon fails to bind instead of
// hijacking the address.
func TestLiveSocketNotStolen(t *testing.T) {
	srv, socket := newTestServer(t, nil)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()

	if err := removeStaleSocket(socket); err != nil {
		t.Fatalf("probe errored on a live socket: %v", err)
	}
	if _, err := os.Stat(socket); err != nil {
		t.Fatalf("probe removed a live socket: %v", err)
	}
	srv2, _ := newTestServer(t, nil)
	srv2.cfg.Socket = socket
	if err := srv2.Serve(); err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second daemon bound a live socket: %v", err)
	}
}

// TestOversizedRequestLine: a request beyond the line limit gets a typed
// "too-large" reply (and a metric), not a silent hangup.
func TestOversizedRequestLine(t *testing.T) {
	srv, socket, reg := newObsTestServer(t, 64)
	wg := serveAsync(t, srv)
	defer func() { srv.Drain(); wg.Wait() }()

	conn, err := net.Dial("unix", socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	big := append(bytes.Repeat([]byte("a"), maxLineBytes+16), '\n')
	if _, err := conn.Write(big); err != nil {
		t.Fatalf("write oversized line: %v", err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no reply to oversized request: %v", err)
	}
	if resp.OK || resp.Code != CodeTooLarge {
		t.Fatalf("oversized reply: %+v", resp)
	}
	// The connection closes after the reply (the stream position is
	// unrecoverable mid-line).
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatalf("connection still open after oversized request")
	}
	if v, ok := reg.Value("rotary_serve_oversized_requests_total"); !ok || v != 1 {
		t.Fatalf("oversized counter = %v, %v", v, ok)
	}
}

// TestResponseCodes pins the machine-readable Code on each error class,
// so retrying clients can branch without string-matching Error.
func TestResponseCodes(t *testing.T) {
	ctrl := admission.NewController(admission.Config{MaxQueueDepth: 1, Policy: admission.Reject})
	srv, socket := newTestServer(t, ctrl)
	wg := serveAsync(t, srv)
	c := dial(t, socket)

	cases := []struct {
		name string
		msg  Message
		want string
	}{
		{"bad statement", Message{Op: "submit", Statement: "q1"}, CodeBadRequest},
		{"unknown op", Message{Op: "frobnicate"}, CodeUnknownOp},
		{"unknown job", Message{Op: "status", ID: "ghost"}, CodeUnknownJob},
		{"negative advance", Message{Op: "advance", Seconds: -1}, CodeBadRequest},
	}
	for _, tc := range cases {
		if r := c.call(t, tc.msg); r.Code != tc.want {
			t.Errorf("%s: code %q, want %q (%+v)", tc.name, r.Code, tc.want, r)
		}
	}
	// Malformed JSON carries bad-request too.
	if _, err := c.conn.Write([]byte("{not json\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !c.sc.Scan() {
		t.Fatalf("no reply to bad JSON: %v", c.sc.Err())
	}
	var badj Response
	if err := json.Unmarshal(c.sc.Bytes(), &badj); err != nil || badj.Code != CodeBadRequest {
		t.Fatalf("bad JSON reply: %+v (%v)", badj, err)
	}
	// Admission refusal and duplicate ids.
	if r := c.call(t, Message{Op: "submit", ID: "a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); !r.OK {
		t.Fatalf("first submit: %+v", r)
	}
	if r := c.call(t, Message{Op: "submit", ID: "a", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.Code != CodeDuplicateRequest {
		t.Errorf("duplicate id code %q, want %q", r.Code, CodeDuplicateRequest)
	}
	if r := c.call(t, Message{Op: "submit", ID: "b", Statement: "q1 ACC MIN 60% WITHIN 900 SECONDS"}); r.Code != CodeAdmissionRefused {
		t.Errorf("refused submit code %q, want %q (%+v)", r.Code, CodeAdmissionRefused, r)
	}

	// Draining refusals carry the draining code: park a raw connection,
	// drain, then ask again on a fresh dial (the listener is closed, so
	// use the parked one).
	parked, err := net.Dial("unix", socket)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer parked.Close()
	if r := srv.Drain(); !r.OK {
		t.Fatalf("drain: %+v", r)
	}
	wg.Wait()
	enc := json.NewEncoder(parked)
	sc := bufio.NewScanner(parked)
	if err := enc.Encode(Message{Op: "stats"}); err == nil && sc.Scan() {
		var r Response
		if jerr := json.Unmarshal(sc.Bytes(), &r); jerr == nil && !r.OK && r.Code != CodeDraining {
			t.Errorf("post-drain refusal code %q, want %q", r.Code, CodeDraining)
		}
	}
}
