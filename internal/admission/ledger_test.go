package admission

import (
	"math"
	"sync"
	"testing"

	"rotary/internal/obs"
)

// checkLedger asserts the invariants every Stats snapshot must satisfy,
// regardless of policy or arrival mix:
//
//	Admitted + Rejected == Submitted - unresolved ShedVictim verdicts
//	Degraded            <= Admitted
//	Shed                <= Admitted (each eviction admitted one arrival)
//	QueueFullRejections <= Rejected
func checkLedger(t *testing.T, s Stats, unresolved int) {
	t.Helper()
	if s.Admitted+s.Rejected != s.Submitted-unresolved {
		t.Errorf("ledger leak: admitted %d + rejected %d != submitted %d - unresolved %d",
			s.Admitted, s.Rejected, s.Submitted, unresolved)
	}
	if s.Degraded > s.Admitted {
		t.Errorf("degraded %d > admitted %d", s.Degraded, s.Admitted)
	}
	if s.Shed > s.Admitted {
		t.Errorf("shed %d > admitted %d", s.Shed, s.Admitted)
	}
	if s.QueueFullRejections > s.Rejected {
		t.Errorf("queue-full rejections %d > rejected %d", s.QueueFullRejections, s.Rejected)
	}
}

// TestStatsLedgerInvariants drives each policy through a mixed arrival
// table and checks that every decision lands in exactly one ledger
// bucket, at every intermediate step and at the end.
func TestStatsLedgerInvariants(t *testing.T) {
	// Arrival mix: feasible under-bound, infeasible, at-bound feasible,
	// at-bound infeasible, and no-deadline arrivals.
	arrivals := []Request{
		{ID: "a", QueueDepth: 0, EstCompletionSecs: 10, RemainingSecs: 100},
		{ID: "b", QueueDepth: 1, EstCompletionSecs: 500, RemainingSecs: 100},
		{ID: "c", QueueDepth: 2, EstCompletionSecs: 10, RemainingSecs: math.Inf(1)},
		{ID: "d", QueueDepth: 2, EstCompletionSecs: 10, RemainingSecs: 100},
		{ID: "e", QueueDepth: 2, EstCompletionSecs: 900, RemainingSecs: 50},
		{ID: "f", QueueDepth: 2, EstCompletionSecs: 1, RemainingSecs: 100},
	}
	cases := []struct {
		name       string
		cfg        Config
		shedFound  bool // outcome reported for every ShedVictim verdict
		wantFields func(s Stats) bool
	}{
		{
			name:       "reject",
			cfg:        Config{MaxQueueDepth: 2, SlackFactor: 1, Policy: Reject},
			wantFields: func(s Stats) bool { return s.Shed == 0 && s.Degraded == 0 && s.Rejected > 0 },
		},
		{
			name:       "shed victim found",
			cfg:        Config{MaxQueueDepth: 2, SlackFactor: 1, Policy: ShedLowestValue},
			shedFound:  true,
			wantFields: func(s Stats) bool { return s.Shed > 0 },
		},
		{
			name:       "shed no victim",
			cfg:        Config{MaxQueueDepth: 2, SlackFactor: 1, Policy: ShedLowestValue},
			shedFound:  false,
			wantFields: func(s Stats) bool { return s.Shed == 0 && s.QueueFullRejections > 0 },
		},
		{
			name:       "degrade",
			cfg:        Config{MaxQueueDepth: 2, SlackFactor: 1, Policy: Degrade},
			wantFields: func(s Stats) bool { return s.Degraded > 0 },
		},
		{
			name:       "unbounded no slack",
			cfg:        Config{Policy: Reject},
			wantFields: func(s Stats) bool { return s.Admitted == s.Submitted && s.Rejected == 0 },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Obs = obs.NewRegistry()
			c := NewController(tc.cfg)
			for _, r := range arrivals {
				d := c.Decide(r)
				if d.Verdict == ShedVictim {
					// Ledger holds even mid-flight, before the verdict resolves.
					checkLedger(t, c.Stats(), 1)
					c.ResolveShed(r, tc.shedFound)
				}
				checkLedger(t, c.Stats(), 0)
			}
			s := c.Stats()
			if s.Submitted != len(arrivals) {
				t.Fatalf("submitted = %d, want %d", s.Submitted, len(arrivals))
			}
			if !tc.wantFields(s) {
				t.Errorf("policy-specific expectation failed: %+v", s)
			}
		})
	}
}

// TestStatsLedgerConcurrent hammers one controller from many goroutines
// and checks that no decision is lost or double-counted. Run under
// -race this also proves the Decide/ResolveShed/Stats ledger is
// data-race free.
func TestStatsLedgerConcurrent(t *testing.T) {
	const workers, perWorker = 8, 250
	c := NewController(Config{MaxQueueDepth: 3, SlackFactor: 1, Policy: ShedLowestValue, Obs: obs.NewRegistry()})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r := Request{
					ID:                "j",
					QueueDepth:        (w + i) % 5,
					EstCompletionSecs: float64(10 * (i%3 + 1)),
					RemainingSecs:     float64(25 * (i%4 + 1)),
				}
				if d := c.Decide(r); d.Verdict == ShedVictim {
					c.ResolveShed(r, i%2 == 0)
				}
				// Interleave snapshots with decisions from other goroutines.
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Submitted != workers*perWorker {
		t.Fatalf("submitted = %d, want %d", s.Submitted, workers*perWorker)
	}
	checkLedger(t, s, 0)
	if s.Admitted == 0 || s.Rejected == 0 {
		t.Fatalf("mix did not exercise both outcomes: %+v", s)
	}
}
