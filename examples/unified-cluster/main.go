// unified-cluster demonstrates the paper's §VI vision: "a unified
// resource arbitration system on a cluster to handle AQP and DLT jobs
// together. Such a system can serve more users and enormously improve
// resource utilization."
//
// A mixed workload — TPC-H reporting queries on the CPU pool and training
// jobs on the GPUs — runs on one virtual clock under one cluster-wide
// fairness threshold: while any job of either kind lags below T, both
// sides serve their laggards first; once the whole cluster clears T, both
// switch to efficiency. The run prints the cluster-wide minimum progress
// over time for T = 100% and T = 0%.
package main

import (
	"fmt"
	"log"

	"rotary"
)

func run(threshold float64) {
	ds := rotary.GenerateTPCH(0.01, 21)
	cat := rotary.NewCatalog(ds, 21)
	repo := rotary.NewRepository()
	if err := rotary.SeedAQPHistory(repo, cat, rotary.RecommendedBatchRows(cat)); err != nil {
		log.Fatal(err)
	}
	if err := rotary.SeedDLTHistory(repo, 30, 30, 21); err != nil {
		log.Fatal(err)
	}
	u := rotary.NewUnifiedExecutor(rotary.UnifiedExecConfig{
		AQP:       rotary.DefaultAQPExecConfig(rotary.DefaultAQPMemoryMB(cat)),
		DLT:       rotary.DefaultDLTExecConfig(),
		Threshold: threshold,
	}, repo)

	for _, spec := range rotary.GenerateAQPWorkload(rotary.DefaultAQPWorkload(8, 21)) {
		spec.BatchRows = rotary.RecommendedBatchRows(cat)
		j, err := rotary.BuildAQPJob(cat, spec)
		if err != nil {
			log.Fatal(err)
		}
		u.SubmitAQP(j, rotary.Time(spec.ArrivalSecs))
	}
	dltSpecs, err := rotary.GenerateDLTWorkload(rotary.DefaultDLTWorkload(8, 21))
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range dltSpecs {
		j, err := rotary.BuildDLTJob(spec)
		if err != nil {
			log.Fatal(err)
		}
		u.SubmitDLT(j, 0)
	}

	fmt.Printf("\ncluster-wide threshold T = %.0f%%\n", threshold*100)
	fmt.Printf("%10s %22s\n", "t(min)", "cluster min progress")
	for tick := rotary.Time(600); ; tick += 600 {
		u.Engine().RunUntil(tick)
		fmt.Printf("%10.0f %22.2f\n", tick.Minutes(), u.MinProgress())
		if u.Engine().Pending() == 0 {
			break
		}
	}
	aqpDone, dltDone := 0, 0
	for _, j := range u.AQPJobs() {
		if j.Status() == rotary.StatusAttainedStop {
			aqpDone++
		}
	}
	for _, j := range u.DLTJobs() {
		if j.Status() == rotary.StatusAttainedStop {
			dltDone++
		}
	}
	fmt.Printf("attained: %d/%d AQP jobs, %d/%d DLT jobs; makespan %.0f min\n",
		aqpDone, len(u.AQPJobs()), dltDone, len(u.DLTJobs()), u.Engine().Now().Minutes())
}

func main() {
	log.SetFlags(0)
	fmt.Println("unified AQP + DLT arbitration on one cluster (§VI)")
	run(1.0) // cluster-wide fairness
	run(0.0) // cluster-wide efficiency
}
