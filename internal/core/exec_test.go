package core_test

import (
	"testing"

	"rotary/internal/baselines"
	"rotary/internal/core"
	"rotary/internal/estimate"
	"rotary/internal/sim"
	"rotary/internal/tpch"
	"rotary/internal/workload"
)

func buildAQPWorkload(t *testing.T, n int, seed uint64) (*tpch.Catalog, []workload.AQPSpec) {
	t.Helper()
	ds := tpch.Generate(0.005, seed)
	cat := tpch.NewCatalog(ds, seed)
	cfg := workload.DefaultAQPWorkload(n, seed)
	cfg.MeanArrivalSecs = 40
	return cat, workload.GenerateAQP(cfg)
}

func runAQP(t *testing.T, cat *tpch.Catalog, specs []workload.AQPSpec, sched core.AQPScheduler, repo *estimate.Repository) *core.AQPExecutor {
	t.Helper()
	exec := core.NewAQPExecutor(core.DefaultAQPExecConfig(workload.DefaultAQPMemoryMB(cat)), sched, repo)
	for _, spec := range specs {
		j, err := workload.BuildAQPJob(cat, spec)
		if err != nil {
			t.Fatalf("build %s: %v", spec.ID, err)
		}
		exec.Submit(j, sim.Time(spec.ArrivalSecs))
	}
	if err := exec.Run(); err != nil {
		t.Fatalf("%s: %v", sched.Name(), err)
	}
	return exec
}

func TestAQPExecutorRunsWorkloadToCompletion(t *testing.T) {
	cat, specs := buildAQPWorkload(t, 8, 11)
	repo := estimate.NewRepository()
	if err := workload.SeedAQPHistory(repo, cat, 2000); err != nil {
		t.Fatalf("seed history: %v", err)
	}
	scheds := []core.AQPScheduler{
		core.NewRotaryAQP(estimate.NewAccuracyProgress(repo, 3)),
		baselines.RoundRobinAQP{},
		baselines.EDFAQP{},
		baselines.LAFAQP{},
		baselines.ReLAQS{},
	}
	for _, sched := range scheds {
		exec := runAQP(t, cat, specs, sched, repo)
		for _, j := range exec.Jobs() {
			if !j.Status().Terminal() {
				t.Errorf("%s: job %s not terminal: %v", sched.Name(), j.ID(), j.Status())
			}
			if j.EndTime() < j.Arrival() {
				t.Errorf("%s: job %s ends before arrival", sched.Name(), j.ID())
			}
			if j.Epochs() == 0 && j.Status() != core.StatusExpired {
				t.Errorf("%s: job %s terminal with zero epochs and status %v", sched.Name(), j.ID(), j.Status())
			}
		}
	}
}

func TestDLTExecutorRunsWorkloadToCompletion(t *testing.T) {
	repo := estimate.NewRepository()
	if err := workload.SeedDLTHistory(repo, 40, 30, 3); err != nil {
		t.Fatalf("seed history: %v", err)
	}
	specs := mustGenDLT(t, 10, 7)
	tee := estimate.NewTEE(repo, 3)
	tme := estimate.NewTME(repo, 3)
	scheds := []core.DLTScheduler{
		core.NewRotaryDLT(0.0, tee, tme),
		core.NewRotaryDLT(0.5, tee, tme),
		core.NewRotaryDLT(1.0, tee, tme),
		baselines.SRF{},
		baselines.BCF{},
		baselines.LAFDLT{},
	}
	for _, sched := range scheds {
		exec := core.NewDLTExecutor(core.DefaultDLTExecConfig(), sched, repo)
		for _, spec := range specs {
			j, err := workload.BuildDLTJob(spec)
			if err != nil {
				t.Fatalf("build %s: %v", spec.ID, err)
			}
			exec.Submit(j, 0)
		}
		if err := exec.Run(); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if exec.OOMEvents() > 0 {
			t.Errorf("%s: %d OOM events with padded TME estimates", sched.Name(), exec.OOMEvents())
		}
		for _, j := range exec.Jobs() {
			if !j.Status().Terminal() {
				t.Errorf("%s: job %s not terminal: %v", sched.Name(), j.ID(), j.Status())
			}
			if j.Epochs() == 0 {
				t.Errorf("%s: job %s never trained", sched.Name(), j.ID())
			}
		}
	}
}
